package isps

import (
	"fmt"
	"strings"
)

// Program is a parsed ISPS processor description.
type Program struct {
	Name   string
	Decls  []*Decl
	Procs  []*Proc
	Main   *Proc // entry behavior; nil until sema links it
	Consts map[string]uint64

	symbols map[string]*Decl
	procs   map[string]*Proc
}

// Decl declares a carrier (register, memory, or port) or a named constant.
type Decl struct {
	Pos    Pos
	Kind   DeclKind
	Name   string
	Hi, Lo int    // bit range <hi:lo>; width = Hi-Lo+1
	AHi    int    // memory address range [ALo:AHi]
	ALo    int    //
	Value  uint64 // for DeclConst
}

// DeclKind classifies a declaration.
type DeclKind int

// Declaration kinds.
const (
	DeclReg DeclKind = iota
	DeclMem
	DeclPortIn
	DeclPortOut
	DeclConst
)

func (k DeclKind) String() string {
	switch k {
	case DeclReg:
		return "reg"
	case DeclMem:
		return "mem"
	case DeclPortIn:
		return "port in"
	case DeclPortOut:
		return "port out"
	case DeclConst:
		return "const"
	}
	return "decl?"
}

// Width returns the declared bit width of the carrier.
func (d *Decl) Width() int { return d.Hi - d.Lo + 1 }

// Words returns the number of addressable words in a memory declaration.
func (d *Decl) Words() int { return d.AHi - d.ALo + 1 }

func (d *Decl) String() string {
	switch d.Kind {
	case DeclMem:
		return fmt.Sprintf("mem %s[%d:%d]<%d:%d>", d.Name, d.ALo, d.AHi, d.Hi, d.Lo)
	case DeclConst:
		return fmt.Sprintf("const %s = %d", d.Name, d.Value)
	default:
		return fmt.Sprintf("%s %s<%d:%d>", d.Kind, d.Name, d.Hi, d.Lo)
	}
}

// Proc is a named behavior body ("main" is the entry point).
type Proc struct {
	Pos    Pos
	Name   string
	IsMain bool
	Body   []Stmt
}

// Stmt is an ISPS statement.
type Stmt interface {
	stmtNode()
	StmtPos() Pos
}

// Assign is a register transfer: LHS := RHS.
type Assign struct {
	Pos Pos
	LHS *LValue
	RHS Expr
}

// LValue is an assignable reference: a carrier, a bit-slice of a register,
// or an indexed memory word.
type LValue struct {
	Pos    Pos
	Name   string
	Decl   *Decl // resolved by sema
	HasSel bool  // bit slice <Hi:Lo>
	Hi, Lo int
	Index  Expr // memory index; nil for registers/ports
}

// Width returns the number of bits written by this lvalue (after sema).
func (l *LValue) Width() int {
	if l.HasSel {
		return l.Hi - l.Lo + 1
	}
	if l.Decl != nil {
		return l.Decl.Width()
	}
	return 0
}

func (l *LValue) String() string {
	var b strings.Builder
	b.WriteString(l.Name)
	if l.Index != nil {
		fmt.Fprintf(&b, "[%s]", l.Index)
	}
	if l.HasSel {
		fmt.Fprintf(&b, "<%d:%d>", l.Hi, l.Lo)
	}
	return b.String()
}

// If is a one- or two-armed conditional.
type If struct {
	Pos  Pos
	Cond Expr
	Then []Stmt
	Else []Stmt // nil when absent
}

// DecodeCase is one arm of a Decode statement.
type DecodeCase struct {
	Pos    Pos
	Values []uint64 // matched selector values
	Body   []Stmt
}

// Decode is the ISPS DECODE construct: an n-way branch on a selector.
type Decode struct {
	Pos       Pos
	Selector  Expr
	Cases     []*DecodeCase
	Otherwise []Stmt // nil when absent
}

// While is a condition-tested loop.
type While struct {
	Pos  Pos
	Cond Expr
	Body []Stmt
}

// Repeat is a bounded loop executed Count times.
type Repeat struct {
	Pos   Pos
	Count uint64
	Body  []Stmt
}

// Call invokes a named procedure.
type Call struct {
	Pos    Pos
	Name   string
	Callee *Proc // resolved by sema
}

// Nop is the explicit no-operation statement.
type Nop struct{ Pos Pos }

// Leave exits the enclosing loop (ISPS LEAVE).
type Leave struct{ Pos Pos }

func (*Assign) stmtNode() {}
func (*If) stmtNode()     {}
func (*Decode) stmtNode() {}
func (*While) stmtNode()  {}
func (*Repeat) stmtNode() {}
func (*Call) stmtNode()   {}
func (*Nop) stmtNode()    {}
func (*Leave) stmtNode()  {}

// StmtPos returns the statement's source position.
func (s *Assign) StmtPos() Pos { return s.Pos }

func (s *If) StmtPos() Pos     { return s.Pos }
func (s *Decode) StmtPos() Pos { return s.Pos }
func (s *While) StmtPos() Pos  { return s.Pos }
func (s *Repeat) StmtPos() Pos { return s.Pos }
func (s *Call) StmtPos() Pos   { return s.Pos }
func (s *Nop) StmtPos() Pos    { return s.Pos }
func (s *Leave) StmtPos() Pos  { return s.Pos }

// Expr is an ISPS expression. Width is computed by sema and is 0 before it.
type Expr interface {
	exprNode()
	ExprPos() Pos
	// ResultWidth reports the inferred bit width (valid after Analyze).
	ResultWidth() int
	String() string
}

// Num is an integer literal.
type Num struct {
	Pos   Pos
	Value uint64
	Width int // inferred (minimal, or widened by context)
}

// Ref reads a carrier, optionally a bit-slice, optionally memory-indexed.
type Ref struct {
	Pos    Pos
	Name   string
	Decl   *Decl // resolved by sema; nil for named constants folded away
	HasSel bool
	Hi, Lo int
	Index  Expr // memory index
	Width  int
}

// UnOp codes for unary operators.
type UnOpKind int

// Unary operators.
const (
	UnNot UnOpKind = iota // bitwise complement
	UnNeg                 // two's-complement negate
)

func (k UnOpKind) String() string {
	if k == UnNot {
		return "not"
	}
	return "-"
}

// UnOp applies a unary operator.
type UnOp struct {
	Pos   Pos
	Op    UnOpKind
	X     Expr
	Width int
}

// BinOpKind codes for binary operators.
type BinOpKind int

// Binary operators (ISPS word operators plus + and -).
const (
	OpAdd BinOpKind = iota
	OpSub
	OpAnd
	OpOr
	OpXor
	OpEql
	OpNeq
	OpLss
	OpLeq
	OpGtr
	OpGeq
	OpSll
	OpSrl
	OpConcat
)

var binOpNames = [...]string{
	OpAdd: "+", OpSub: "-", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpEql: "eql", OpNeq: "neq", OpLss: "lss", OpLeq: "leq",
	OpGtr: "gtr", OpGeq: "geq", OpSll: "sll", OpSrl: "srl", OpConcat: "@",
}

func (k BinOpKind) String() string { return binOpNames[k] }

// IsCompare reports whether the operator yields a 1-bit truth value.
func (k BinOpKind) IsCompare() bool {
	switch k {
	case OpEql, OpNeq, OpLss, OpLeq, OpGtr, OpGeq:
		return true
	}
	return false
}

// BinOp applies a binary operator.
type BinOp struct {
	Pos   Pos
	Op    BinOpKind
	X, Y  Expr
	Width int
}

func (*Num) exprNode()   {}
func (*Ref) exprNode()   {}
func (*UnOp) exprNode()  {}
func (*BinOp) exprNode() {}

// ExprPos returns the expression's source position.
func (e *Num) ExprPos() Pos { return e.Pos }

func (e *Ref) ExprPos() Pos   { return e.Pos }
func (e *UnOp) ExprPos() Pos  { return e.Pos }
func (e *BinOp) ExprPos() Pos { return e.Pos }

// ResultWidth reports the inferred width of the literal.
func (e *Num) ResultWidth() int { return e.Width }

func (e *Ref) ResultWidth() int   { return e.Width }
func (e *UnOp) ResultWidth() int  { return e.Width }
func (e *BinOp) ResultWidth() int { return e.Width }

func (e *Num) String() string { return fmt.Sprintf("%d", e.Value) }

func (e *Ref) String() string {
	var b strings.Builder
	b.WriteString(e.Name)
	if e.Index != nil {
		fmt.Fprintf(&b, "[%s]", e.Index)
	}
	if e.HasSel {
		fmt.Fprintf(&b, "<%d:%d>", e.Hi, e.Lo)
	}
	return b.String()
}

func (e *UnOp) String() string { return fmt.Sprintf("(%s %s)", e.Op, e.X) }

func (e *BinOp) String() string {
	return fmt.Sprintf("(%s %s %s)", e.X, e.Op, e.Y)
}

// Lookup returns the declaration for name, if any (valid after Analyze).
func (p *Program) Lookup(name string) *Decl { return p.symbols[name] }

// LookupProc returns the procedure named name, if any (valid after Analyze).
func (p *Program) LookupProc(name string) *Proc { return p.procs[name] }

// Carriers returns the non-constant declarations in declaration order.
func (p *Program) Carriers() []*Decl {
	var out []*Decl
	for _, d := range p.Decls {
		if d.Kind != DeclConst {
			out = append(out, d)
		}
	}
	return out
}

// minWidth returns the minimal number of bits needed to represent v.
func minWidth(v uint64) int {
	w := 1
	for v > 1 {
		v >>= 1
		w++
	}
	return w
}
