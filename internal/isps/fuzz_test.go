package isps_test

// Native fuzz targets. In normal test runs only the seed corpus executes;
// run `go test -fuzz=FuzzParse ./internal/isps` to explore further.

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/isps"
	"repro/internal/sim"
	"repro/internal/vt"
)

// newBoundedMachine builds a simulator with a small step budget so fuzz
// inputs with infinite loops terminate quickly.
func newBoundedMachine(prog *isps.Program) *sim.Machine {
	m := sim.New(prog)
	m.MaxSteps = 10_000
	return m
}

func FuzzParse(f *testing.F) {
	for _, name := range bench.Names() {
		src, err := bench.Source(name)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(src)
	}
	f.Add("processor P { reg A main m { A := 1 } }")
	f.Add("processor P { } garbage")
	f.Add("")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := isps.Parse("fuzz", src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// The semantic linter must hold up on anything the front end
		// accepts: no panics, and two runs agree (determinism).
		ws := isps.Lint(prog)
		again := isps.Lint(prog)
		if len(ws) != len(again) {
			t.Fatalf("lint is nondeterministic: %d then %d warnings\n%s", len(ws), len(again), src)
		}
		for i := range ws {
			if ws[i].String() != again[i].String() {
				t.Fatalf("lint is nondeterministic at %d: %v vs %v\n%s", i, ws[i], again[i], src)
			}
		}
		// Anything the front end accepts must lower and validate.
		tr, err := vt.Build(prog)
		if err != nil {
			t.Fatalf("accepted source failed to lower: %v\n%s", err, src)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("accepted source built an invalid trace: %v\n%s", err, src)
		}
		// And the formatter must round-trip it.
		out := isps.Format(prog)
		if _, err := isps.Parse("fuzz.fmt", out); err != nil {
			t.Fatalf("formatted output does not reparse: %v\n%s", err, out)
		}
	})
}

func FuzzSimulate(f *testing.F) {
	f.Add("processor P { reg A<7:0> main m { A := A + 1 } }", uint64(3))
	f.Add("processor P { reg A<7:0> main m { while A neq 0 { A := A - 1 } } }", uint64(200))
	f.Fuzz(func(t *testing.T, src string, seed uint64) {
		prog, err := isps.Parse("fuzz", src)
		if err != nil {
			return
		}
		if _, err := vt.Build(prog); err != nil {
			return
		}
		m := newBoundedMachine(prog)
		for _, d := range prog.Carriers() {
			if d.Kind == isps.DeclReg || d.Kind == isps.DeclPortIn {
				m.Set(d.Name, seed)
			}
		}
		_ = m.Run() // must terminate (step budget) without panicking
	})
}
