package isps

import "fmt"

// TokenKind enumerates the lexical classes of the ISPS subset.
type TokenKind int

// Token kinds. Keyword kinds mirror the surface keywords; operator kinds
// mirror the ISPS operator vocabulary (EQL, NEQ, ... are words in ISPS).
const (
	TokEOF TokenKind = iota
	TokIdent
	TokNumber

	// Punctuation.
	TokLBrace   // {
	TokRBrace   // }
	TokLParen   // (
	TokRParen   // )
	TokLBracket // [
	TokRBracket // ]
	TokLAngle   // <
	TokRAngle   // >
	TokColon    // :
	TokComma    // ,
	TokSemi     // ;
	TokAssign   // :=
	TokConcat   // @
	TokPlus     // +
	TokMinus    // -
	TokEquals   // =

	// Keywords.
	TokProcessor
	TokReg
	TokMem
	TokPort
	TokIn
	TokOut
	TokConst
	TokProc
	TokMain
	TokIf
	TokElse
	TokDecode
	TokOtherwise
	TokWhile
	TokRepeat
	TokCall
	TokNop
	TokLeave

	// Word operators.
	TokAnd
	TokOr
	TokXor
	TokNot
	TokEql
	TokNeq
	TokLss
	TokLeq
	TokGtr
	TokGeq
	TokSll
	TokSrl
)

var tokenNames = map[TokenKind]string{
	TokEOF:       "end of file",
	TokIdent:     "identifier",
	TokNumber:    "number",
	TokLBrace:    "'{'",
	TokRBrace:    "'}'",
	TokLParen:    "'('",
	TokRParen:    "')'",
	TokLBracket:  "'['",
	TokRBracket:  "']'",
	TokLAngle:    "'<'",
	TokRAngle:    "'>'",
	TokColon:     "':'",
	TokComma:     "','",
	TokSemi:      "';'",
	TokAssign:    "':='",
	TokConcat:    "'@'",
	TokPlus:      "'+'",
	TokMinus:     "'-'",
	TokEquals:    "'='",
	TokProcessor: "'processor'",
	TokReg:       "'reg'",
	TokMem:       "'mem'",
	TokPort:      "'port'",
	TokIn:        "'in'",
	TokOut:       "'out'",
	TokConst:     "'const'",
	TokProc:      "'proc'",
	TokMain:      "'main'",
	TokIf:        "'if'",
	TokElse:      "'else'",
	TokDecode:    "'decode'",
	TokOtherwise: "'otherwise'",
	TokWhile:     "'while'",
	TokRepeat:    "'repeat'",
	TokCall:      "'call'",
	TokNop:       "'nop'",
	TokLeave:     "'leave'",
	TokAnd:       "'and'",
	TokOr:        "'or'",
	TokXor:       "'xor'",
	TokNot:       "'not'",
	TokEql:       "'eql'",
	TokNeq:       "'neq'",
	TokLss:       "'lss'",
	TokLeq:       "'leq'",
	TokGtr:       "'gtr'",
	TokGeq:       "'geq'",
	TokSll:       "'sll'",
	TokSrl:       "'srl'",
}

func (k TokenKind) String() string {
	if s, ok := tokenNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

var keywords = map[string]TokenKind{
	"processor": TokProcessor,
	"reg":       TokReg,
	"mem":       TokMem,
	"port":      TokPort,
	"in":        TokIn,
	"out":       TokOut,
	"const":     TokConst,
	"proc":      TokProc,
	"main":      TokMain,
	"if":        TokIf,
	"else":      TokElse,
	"decode":    TokDecode,
	"otherwise": TokOtherwise,
	"while":     TokWhile,
	"repeat":    TokRepeat,
	"call":      TokCall,
	"nop":       TokNop,
	"leave":     TokLeave,
	"and":       TokAnd,
	"or":        TokOr,
	"xor":       TokXor,
	"not":       TokNot,
	"eql":       TokEql,
	"neq":       TokNeq,
	"lss":       TokLss,
	"leq":       TokLeq,
	"gtr":       TokGtr,
	"geq":       TokGeq,
	"sll":       TokSll,
	"srl":       TokSrl,
}

// Pos is a source position within an ISPS description.
type Pos struct {
	File string
	Line int // 1-based
	Col  int // 1-based, in bytes
}

func (p Pos) String() string {
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// Token is a single lexical token with its source position.
type Token struct {
	Kind TokenKind
	Text string // raw text for identifiers and numbers
	Val  uint64 // decoded value for TokNumber
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case TokIdent:
		return fmt.Sprintf("identifier %q", t.Text)
	case TokNumber:
		return fmt.Sprintf("number %s", t.Text)
	default:
		return t.Kind.String()
	}
}
