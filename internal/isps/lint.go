package isps

import (
	"fmt"
	"sort"
)

// Warning is a non-fatal observation about a description: the program is
// legal, but a designer would want to look.
type Warning struct {
	Pos  Pos
	Code string // stable identifier, e.g. "unused-carrier"
	Msg  string
}

func (w Warning) String() string { return fmt.Sprintf("%s: %s: %s", w.Pos, w.Code, w.Msg) }

// Lint inspects an analyzed program for suspicious constructs:
//
//	unused-carrier      a declared carrier is never referenced
//	never-written       a register or output port is read/driven nowhere
//	write-only-register a register is written but its value goes nowhere
//	constant-condition  an if/while condition is a constant
//	self-assignment     X := X has no effect
//	incomplete-decode   a decode without otherwise does not cover its selector
//	unreachable-decode  a decode arm that can never run: an otherwise behind
//	                    full case coverage, or a case a constant selector
//	                    never takes
//	width-mismatch      a comparison of carriers with different widths; the
//	                    narrower side zero-extends, which usually means a
//	                    missing bit slice
//	empty-procedure     a procedure with no statements
//	unused-procedure    a procedure never called and not the entry
//
// Lint expects an analyzed program (expression widths come from sema).
// Assignments need no width lint: sema already rejects truncation as a hard
// error, and zero-extending a narrower source is idiomatic ISPS.
//
// The order of warnings is deterministic (by position).
func Lint(prog *Program) []Warning {
	l := &linter{prog: prog, reads: map[*Decl]bool{}, writes: map[*Decl]bool{}, called: map[*Proc]bool{}}
	for _, pr := range prog.Procs {
		if len(pr.Body) == 0 {
			l.warn(pr.Pos, "empty-procedure", "procedure %s has no statements", pr.Name)
		}
		l.stmts(pr.Body)
	}
	for _, d := range prog.Carriers() {
		switch {
		case !l.reads[d] && !l.writes[d]:
			l.warn(d.Pos, "unused-carrier", "%s %s is never referenced", d.Kind, d.Name)
		case d.Kind == DeclReg && !l.writes[d]:
			l.warn(d.Pos, "never-written", "register %s is read but never written (holds its reset value)", d.Name)
		case d.Kind == DeclReg && !l.reads[d]:
			l.warn(d.Pos, "write-only-register", "register %s is written but never read", d.Name)
		case d.Kind == DeclPortOut && !l.writes[d]:
			l.warn(d.Pos, "never-written", "output port %s is never driven", d.Name)
		}
	}
	for _, pr := range prog.Procs {
		if !pr.IsMain && !l.called[pr] {
			l.warn(pr.Pos, "unused-procedure", "procedure %s is never called", pr.Name)
		}
	}
	sort.Slice(l.out, func(i, j int) bool {
		a, b := l.out[i].Pos, l.out[j].Pos
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return l.out[i].Code < l.out[j].Code
	})
	return l.out
}

type linter struct {
	prog   *Program
	reads  map[*Decl]bool
	writes map[*Decl]bool
	called map[*Proc]bool
	out    []Warning
}

func (l *linter) warn(pos Pos, code, format string, args ...any) {
	l.out = append(l.out, Warning{Pos: pos, Code: code, Msg: fmt.Sprintf(format, args...)})
}

func (l *linter) stmts(stmts []Stmt) {
	for _, s := range stmts {
		l.stmt(s)
	}
}

func (l *linter) stmt(s Stmt) {
	switch s := s.(type) {
	case *Assign:
		l.expr(s.RHS)
		if s.LHS.Index != nil {
			l.expr(s.LHS.Index)
		}
		if s.LHS.Decl != nil {
			l.writes[s.LHS.Decl] = true
		}
		if ref, ok := s.RHS.(*Ref); ok && ref.Decl == s.LHS.Decl && ref.Decl != nil &&
			ref.HasSel == s.LHS.HasSel && ref.Hi == s.LHS.Hi && ref.Lo == s.LHS.Lo &&
			ref.Index == nil && s.LHS.Index == nil {
			l.warn(s.Pos, "self-assignment", "%s := %s has no effect", s.LHS, ref)
		}
	case *If:
		if _, isConst := s.Cond.(*Num); isConst {
			l.warn(s.Pos, "constant-condition", "if condition is constant")
		}
		l.expr(s.Cond)
		l.stmts(s.Then)
		l.stmts(s.Else)
	case *Decode:
		l.expr(s.Selector)
		w := s.Selector.ResultWidth()
		covered := map[uint64]bool{}
		for _, c := range s.Cases {
			for _, v := range c.Values {
				covered[v] = true
			}
		}
		if w > 0 && w < 16 {
			switch full := len(covered) == 1<<uint(w); {
			case s.Otherwise == nil && !full:
				l.warn(s.Pos, "incomplete-decode",
					"decode covers %d of %d selector values with no otherwise arm (uncovered values do nothing)",
					len(covered), 1<<uint(w))
			case s.Otherwise != nil && full:
				l.warn(s.Pos, "unreachable-decode",
					"otherwise arm is unreachable: the cases already cover all %d selector values", 1<<uint(w))
			}
		}
		if n, isConst := s.Selector.(*Num); isConst {
			for _, c := range s.Cases {
				hit := false
				for _, v := range c.Values {
					if v == n.Value {
						hit = true
						break
					}
				}
				if !hit {
					l.warn(c.Pos, "unreachable-decode",
						"case is unreachable: the selector is constantly %d", n.Value)
				}
			}
		}
		for _, c := range s.Cases {
			l.stmts(c.Body)
		}
		l.stmts(s.Otherwise)
	case *While:
		if n, isConst := s.Cond.(*Num); isConst && n.Value == 0 {
			l.warn(s.Pos, "constant-condition", "while condition is constantly false: loop body never runs")
		}
		l.expr(s.Cond)
		l.stmts(s.Body)
	case *Repeat:
		l.stmts(s.Body)
	case *Call:
		if s.Callee != nil {
			l.called[s.Callee] = true
		}
	}
}

func (l *linter) expr(e Expr) {
	switch e := e.(type) {
	case *Ref:
		if e.Decl != nil && e.Decl.Kind != DeclConst {
			l.reads[e.Decl] = true
		}
		if e.Index != nil {
			l.expr(e.Index)
		}
	case *UnOp:
		l.expr(e.X)
	case *BinOp:
		if e.Op.IsCompare() {
			// Sema re-widens constant operands to the other side's width, so a
			// surviving mismatch is carrier-vs-carrier: the narrower one
			// zero-extends before the compare, which usually means the wider
			// side wanted a bit slice.
			_, xConst := e.X.(*Num)
			_, yConst := e.Y.(*Num)
			xw, yw := e.X.ResultWidth(), e.Y.ResultWidth()
			if !xConst && !yConst && xw > 0 && yw > 0 && xw != yw {
				l.warn(e.Pos, "width-mismatch",
					"comparing %d-bit %s with %d-bit %s (the narrower side zero-extends)", xw, e.X, yw, e.Y)
			}
		}
		l.expr(e.X)
		l.expr(e.Y)
	}
}
