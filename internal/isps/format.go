package isps

import (
	"fmt"
	"strings"
)

// Format renders a parsed program back to canonical ISPS source. The
// output parses to an equivalent program (same declarations, procedures,
// statement structure, and expression trees); comments are not preserved
// (the lexer discards them). Formatting is idempotent: formatting the
// parse of formatted output reproduces it byte for byte.
func Format(p *Program) string {
	f := &formatter{}
	f.printf("processor %s {", p.Name)
	f.indent++
	if len(p.Decls) > 0 {
		for _, d := range p.Decls {
			f.printf("%s", formatDecl(d))
		}
	}
	for _, pr := range p.Procs {
		f.printf("")
		kw := "proc " + pr.Name
		if pr.IsMain {
			// "main" is a keyword: an entry body that kept the default
			// name prints without one.
			kw = "main " + pr.Name
			if pr.Name == "main" {
				kw = "main"
			}
		}
		f.printf("%s {", kw)
		f.indent++
		f.stmts(pr.Body)
		f.indent--
		f.printf("}")
	}
	f.indent--
	f.printf("}")
	return f.b.String()
}

type formatter struct {
	b      strings.Builder
	indent int
}

func (f *formatter) printf(format string, args ...any) {
	line := fmt.Sprintf(format, args...)
	if line == "" {
		f.b.WriteString("\n")
		return
	}
	f.b.WriteString(strings.Repeat("    ", f.indent))
	f.b.WriteString(line)
	f.b.WriteString("\n")
}

func formatDecl(d *Decl) string {
	switch d.Kind {
	case DeclReg:
		return fmt.Sprintf("reg %s%s", d.Name, formatRange(d))
	case DeclMem:
		return fmt.Sprintf("mem %s[%d:%d]%s", d.Name, d.ALo, d.AHi, formatRange(d))
	case DeclPortIn:
		return fmt.Sprintf("port in %s%s", d.Name, formatRange(d))
	case DeclPortOut:
		return fmt.Sprintf("port out %s%s", d.Name, formatRange(d))
	case DeclConst:
		return fmt.Sprintf("const %s = %d", d.Name, d.Value)
	}
	return "?"
}

func formatRange(d *Decl) string {
	if d.Hi == 0 && d.Lo == 0 {
		return "" // 1-bit default
	}
	return fmt.Sprintf("<%d:%d>", d.Hi, d.Lo)
}

func (f *formatter) stmts(stmts []Stmt) {
	for _, s := range stmts {
		f.stmt(s)
	}
}

func (f *formatter) stmt(s Stmt) {
	switch s := s.(type) {
	case *Assign:
		f.printf("%s := %s", formatLValue(s.LHS), FormatExpr(s.RHS))
	case *If:
		f.printf("if %s {", FormatExpr(s.Cond))
		f.indent++
		f.stmts(s.Then)
		f.indent--
		if len(s.Else) > 0 {
			f.printf("} else {")
			f.indent++
			f.stmts(s.Else)
			f.indent--
		}
		f.printf("}")
	case *Decode:
		f.printf("decode %s {", FormatExpr(s.Selector))
		f.indent++
		for _, c := range s.Cases {
			vals := make([]string, len(c.Values))
			for i, v := range c.Values {
				vals[i] = fmt.Sprintf("%d", v)
			}
			f.printf("%s: {", strings.Join(vals, ", "))
			f.indent++
			f.stmts(c.Body)
			f.indent--
			f.printf("}")
		}
		if s.Otherwise != nil {
			f.printf("otherwise: {")
			f.indent++
			f.stmts(s.Otherwise)
			f.indent--
			f.printf("}")
		}
		f.indent--
		f.printf("}")
	case *While:
		f.printf("while %s {", FormatExpr(s.Cond))
		f.indent++
		f.stmts(s.Body)
		f.indent--
		f.printf("}")
	case *Repeat:
		f.printf("repeat %d {", s.Count)
		f.indent++
		f.stmts(s.Body)
		f.indent--
		f.printf("}")
	case *Call:
		f.printf("call %s", s.Name)
	case *Nop:
		f.printf("nop")
	case *Leave:
		f.printf("leave")
	}
}

func formatLValue(lv *LValue) string {
	var b strings.Builder
	b.WriteString(lv.Name)
	if lv.Index != nil {
		fmt.Fprintf(&b, "[%s]", FormatExpr(lv.Index))
	}
	if lv.HasSel {
		fmt.Fprintf(&b, "<%d:%d>", lv.Hi, lv.Lo)
	}
	return b.String()
}

// FormatExpr renders an expression with explicit parentheses around every
// binary operation, so precedence never changes across a round trip.
func FormatExpr(e Expr) string {
	switch e := e.(type) {
	case *Num:
		return fmt.Sprintf("%d", e.Value)
	case *Ref:
		var b strings.Builder
		b.WriteString(e.Name)
		if e.Index != nil {
			fmt.Fprintf(&b, "[%s]", FormatExpr(e.Index))
		}
		if e.HasSel {
			fmt.Fprintf(&b, "<%d:%d>", e.Hi, e.Lo)
		}
		return b.String()
	case *UnOp:
		if e.Op == UnNot {
			return fmt.Sprintf("(not %s)", FormatExpr(e.X))
		}
		return fmt.Sprintf("(- %s)", FormatExpr(e.X))
	case *BinOp:
		return fmt.Sprintf("(%s %s %s)", FormatExpr(e.X), e.Op, FormatExpr(e.Y))
	}
	return "?"
}
