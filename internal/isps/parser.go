package isps

import "fmt"

// Parse parses an ISPS description and runs semantic analysis. The file name
// is used only for positions in error messages.
func Parse(file, src string) (*Program, error) {
	prog, err := ParseOnly(file, src)
	if err != nil {
		return nil, err
	}
	if err := Analyze(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

// ParseOnly parses without semantic analysis; widths and symbol links are
// not populated. Intended for tooling that needs the raw syntax tree.
func ParseOnly(file, src string) (*Program, error) {
	toks, errs := lexAll(file, src)
	p := &parser{toks: toks, errs: errs}
	prog := p.parseProgram()
	if err := p.errs.Err(); err != nil {
		return nil, err
	}
	return prog, nil
}

type parser struct {
	toks []Token
	pos  int
	errs ErrorList
}

func (p *parser) cur() Token { return p.toks[p.pos] }
func (p *parser) peek() Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) advance() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) accept(k TokenKind) bool {
	if p.cur().Kind == k {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(k TokenKind) Token {
	if p.cur().Kind == k {
		return p.advance()
	}
	p.errorf(p.cur().Pos, "expected %s, found %s", k, p.cur())
	return Token{Kind: k, Pos: p.cur().Pos}
}

func (p *parser) errorf(pos Pos, format string, args ...any) {
	p.errs = append(p.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
	if len(p.errs) > 50 {
		panic(bailout{})
	}
}

type bailout struct{}

func (p *parser) parseProgram() (prog *Program) {
	prog = &Program{Consts: map[string]uint64{}}
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(bailout); !ok {
				panic(r)
			}
		}
	}()
	p.expect(TokProcessor)
	prog.Name = p.expect(TokIdent).Text
	p.expect(TokLBrace)
	for {
		switch p.cur().Kind {
		case TokReg, TokMem, TokPort, TokConst:
			prog.Decls = append(prog.Decls, p.parseDecl())
		case TokSemi:
			p.advance()
		case TokProc, TokMain:
			prog.Procs = append(prog.Procs, p.parseProc())
		case TokRBrace:
			p.advance()
			if p.cur().Kind != TokEOF {
				p.errorf(p.cur().Pos, "unexpected %s after processor body", p.cur())
			}
			return prog
		case TokEOF:
			p.errorf(p.cur().Pos, "unexpected end of file in processor body")
			return prog
		default:
			p.errorf(p.cur().Pos, "expected declaration or procedure, found %s", p.cur())
			p.advance()
		}
	}
}

// parseRange parses <hi:lo>; a missing range means a 1-bit carrier <0:0>.
func (p *parser) parseRange() (hi, lo int) {
	if !p.accept(TokLAngle) {
		return 0, 0
	}
	hiTok := p.expect(TokNumber)
	p.expect(TokColon)
	loTok := p.expect(TokNumber)
	p.expect(TokRAngle)
	hi, lo = int(hiTok.Val), int(loTok.Val)
	if hi < lo {
		p.errorf(hiTok.Pos, "bit range <%d:%d> has hi < lo", hi, lo)
		hi = lo
	}
	return hi, lo
}

func (p *parser) parseDecl() *Decl {
	start := p.cur()
	switch start.Kind {
	case TokReg:
		p.advance()
		d := &Decl{Pos: start.Pos, Kind: DeclReg, Name: p.expect(TokIdent).Text}
		d.Hi, d.Lo = p.parseRange()
		return d
	case TokMem:
		p.advance()
		d := &Decl{Pos: start.Pos, Kind: DeclMem, Name: p.expect(TokIdent).Text}
		p.expect(TokLBracket)
		loTok := p.expect(TokNumber)
		p.expect(TokColon)
		hiTok := p.expect(TokNumber)
		p.expect(TokRBracket)
		d.ALo, d.AHi = int(loTok.Val), int(hiTok.Val)
		if d.AHi < d.ALo {
			p.errorf(loTok.Pos, "memory range [%d:%d] has lo > hi", d.ALo, d.AHi)
			d.AHi = d.ALo
		}
		d.Hi, d.Lo = p.parseRange()
		return d
	case TokPort:
		p.advance()
		kind := DeclPortIn
		switch p.cur().Kind {
		case TokIn:
			p.advance()
		case TokOut:
			kind = DeclPortOut
			p.advance()
		default:
			p.errorf(p.cur().Pos, "expected 'in' or 'out' after 'port', found %s", p.cur())
		}
		d := &Decl{Pos: start.Pos, Kind: kind, Name: p.expect(TokIdent).Text}
		d.Hi, d.Lo = p.parseRange()
		return d
	case TokConst:
		p.advance()
		d := &Decl{Pos: start.Pos, Kind: DeclConst, Name: p.expect(TokIdent).Text}
		p.expect(TokEquals)
		d.Value = p.expect(TokNumber).Val
		return d
	}
	panic("unreachable")
}

func (p *parser) parseProc() *Proc {
	start := p.advance() // proc or main
	pr := &Proc{Pos: start.Pos, IsMain: start.Kind == TokMain}
	if pr.IsMain {
		pr.Name = "main"
		if p.cur().Kind == TokIdent { // optional name after 'main'
			pr.Name = p.advance().Text
		}
	} else {
		pr.Name = p.expect(TokIdent).Text
	}
	pr.Body = p.parseBlock()
	return pr
}

func (p *parser) parseBlock() []Stmt {
	p.expect(TokLBrace)
	var stmts []Stmt
	for {
		switch p.cur().Kind {
		case TokRBrace:
			p.advance()
			return stmts
		case TokEOF:
			p.errorf(p.cur().Pos, "unexpected end of file in block")
			return stmts
		case TokSemi:
			p.advance()
		default:
			stmts = append(stmts, p.parseStmt())
		}
	}
}

// parseStmtOrBlock allows a decode arm to be a single statement or a block.
func (p *parser) parseStmtOrBlock() []Stmt {
	if p.cur().Kind == TokLBrace {
		return p.parseBlock()
	}
	return []Stmt{p.parseStmt()}
}

func (p *parser) parseStmt() Stmt {
	t := p.cur()
	switch t.Kind {
	case TokIdent:
		return p.parseAssign()
	case TokIf:
		return p.parseIf()
	case TokDecode:
		return p.parseDecode()
	case TokWhile:
		p.advance()
		cond := p.parseExpr()
		body := p.parseBlock()
		return &While{Pos: t.Pos, Cond: cond, Body: body}
	case TokRepeat:
		p.advance()
		n := p.expect(TokNumber)
		body := p.parseBlock()
		if n.Val == 0 {
			p.errorf(n.Pos, "repeat count must be positive")
		}
		return &Repeat{Pos: t.Pos, Count: n.Val, Body: body}
	case TokCall:
		p.advance()
		name := p.expect(TokIdent)
		return &Call{Pos: t.Pos, Name: name.Text}
	case TokNop:
		p.advance()
		return &Nop{Pos: t.Pos}
	case TokLeave:
		p.advance()
		return &Leave{Pos: t.Pos}
	}
	p.errorf(t.Pos, "expected statement, found %s", t)
	p.advance()
	return &Nop{Pos: t.Pos}
}

func (p *parser) parseAssign() Stmt {
	lv := p.parseLValue()
	p.expect(TokAssign)
	rhs := p.parseExpr()
	return &Assign{Pos: lv.Pos, LHS: lv, RHS: rhs}
}

func (p *parser) parseLValue() *LValue {
	name := p.expect(TokIdent)
	lv := &LValue{Pos: name.Pos, Name: name.Text}
	if p.accept(TokLBracket) {
		lv.Index = p.parseExpr()
		p.expect(TokRBracket)
	}
	// A '<' here is a bit-slice only if it looks like <num:num>; an lvalue
	// is always followed by ':=' so there is no comparison ambiguity.
	if p.cur().Kind == TokLAngle {
		p.advance()
		hiTok := p.expect(TokNumber)
		p.expect(TokColon)
		loTok := p.expect(TokNumber)
		p.expect(TokRAngle)
		lv.HasSel = true
		lv.Hi, lv.Lo = int(hiTok.Val), int(loTok.Val)
		if lv.Hi < lv.Lo {
			p.errorf(hiTok.Pos, "bit slice <%d:%d> has hi < lo", lv.Hi, lv.Lo)
			lv.Hi = lv.Lo
		}
	}
	return lv
}

func (p *parser) parseIf() Stmt {
	t := p.expect(TokIf)
	cond := p.parseExpr()
	then := p.parseBlock()
	var els []Stmt
	if p.accept(TokElse) {
		if p.cur().Kind == TokIf {
			els = []Stmt{p.parseIf()}
		} else {
			els = p.parseBlock()
		}
	}
	return &If{Pos: t.Pos, Cond: cond, Then: then, Else: els}
}

func (p *parser) parseDecode() Stmt {
	t := p.expect(TokDecode)
	sel := p.parseExpr()
	d := &Decode{Pos: t.Pos, Selector: sel}
	p.expect(TokLBrace)
	for {
		switch p.cur().Kind {
		case TokRBrace:
			p.advance()
			return d
		case TokEOF:
			p.errorf(p.cur().Pos, "unexpected end of file in decode")
			return d
		case TokOtherwise:
			ot := p.advance()
			p.expect(TokColon)
			if d.Otherwise != nil {
				p.errorf(ot.Pos, "duplicate otherwise arm")
			}
			d.Otherwise = p.parseStmtOrBlock()
		case TokNumber:
			c := &DecodeCase{Pos: p.cur().Pos}
			c.Values = append(c.Values, p.advance().Val)
			for p.accept(TokComma) {
				c.Values = append(c.Values, p.expect(TokNumber).Val)
			}
			p.expect(TokColon)
			c.Body = p.parseStmtOrBlock()
			d.Cases = append(d.Cases, c)
		default:
			p.errorf(p.cur().Pos, "expected case value or 'otherwise', found %s", p.cur())
			p.advance()
		}
	}
}

// Expression parsing by precedence climbing. From loosest to tightest:
//
//	@ (concat) < or < xor < and < comparisons < shifts < + - < unary
func (p *parser) parseExpr() Expr { return p.parseConcat() }

func (p *parser) parseConcat() Expr {
	x := p.parseOr()
	for p.cur().Kind == TokConcat {
		t := p.advance()
		y := p.parseOr()
		x = &BinOp{Pos: t.Pos, Op: OpConcat, X: x, Y: y}
	}
	return x
}

func (p *parser) parseOr() Expr {
	x := p.parseXor()
	for p.cur().Kind == TokOr {
		t := p.advance()
		y := p.parseXor()
		x = &BinOp{Pos: t.Pos, Op: OpOr, X: x, Y: y}
	}
	return x
}

func (p *parser) parseXor() Expr {
	x := p.parseAnd()
	for p.cur().Kind == TokXor {
		t := p.advance()
		y := p.parseAnd()
		x = &BinOp{Pos: t.Pos, Op: OpXor, X: x, Y: y}
	}
	return x
}

func (p *parser) parseAnd() Expr {
	x := p.parseCompare()
	for p.cur().Kind == TokAnd {
		t := p.advance()
		y := p.parseCompare()
		x = &BinOp{Pos: t.Pos, Op: OpAnd, X: x, Y: y}
	}
	return x
}

func (p *parser) parseCompare() Expr {
	x := p.parseShift()
	for {
		var op BinOpKind
		switch p.cur().Kind {
		case TokEql:
			op = OpEql
		case TokNeq:
			op = OpNeq
		case TokLss:
			op = OpLss
		case TokLeq:
			op = OpLeq
		case TokGtr:
			op = OpGtr
		case TokGeq:
			op = OpGeq
		default:
			return x
		}
		t := p.advance()
		y := p.parseShift()
		x = &BinOp{Pos: t.Pos, Op: op, X: x, Y: y}
	}
}

func (p *parser) parseShift() Expr {
	x := p.parseAdd()
	for {
		var op BinOpKind
		switch p.cur().Kind {
		case TokSll:
			op = OpSll
		case TokSrl:
			op = OpSrl
		default:
			return x
		}
		t := p.advance()
		y := p.parseAdd()
		x = &BinOp{Pos: t.Pos, Op: op, X: x, Y: y}
	}
}

func (p *parser) parseAdd() Expr {
	x := p.parseUnary()
	for {
		var op BinOpKind
		switch p.cur().Kind {
		case TokPlus:
			op = OpAdd
		case TokMinus:
			op = OpSub
		default:
			return x
		}
		t := p.advance()
		y := p.parseUnary()
		x = &BinOp{Pos: t.Pos, Op: op, X: x, Y: y}
	}
}

func (p *parser) parseUnary() Expr {
	switch p.cur().Kind {
	case TokNot:
		t := p.advance()
		return &UnOp{Pos: t.Pos, Op: UnNot, X: p.parseUnary()}
	case TokMinus:
		t := p.advance()
		return &UnOp{Pos: t.Pos, Op: UnNeg, X: p.parseUnary()}
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() Expr {
	t := p.cur()
	switch t.Kind {
	case TokNumber:
		p.advance()
		return &Num{Pos: t.Pos, Value: t.Val}
	case TokLParen:
		p.advance()
		e := p.parseExpr()
		p.expect(TokRParen)
		return e
	case TokIdent:
		p.advance()
		r := &Ref{Pos: t.Pos, Name: t.Text}
		if p.accept(TokLBracket) {
			r.Index = p.parseExpr()
			p.expect(TokRBracket)
		}
		// Bit slice: only treat '<' as a slice when it is followed by
		// "num : num >", so that "A < B" style comparisons (which use the
		// word operator lss anyway) cannot arise. '<' in expression
		// position after a reference is always a slice in this grammar.
		if p.cur().Kind == TokLAngle && p.peek().Kind == TokNumber {
			p.advance()
			hiTok := p.expect(TokNumber)
			p.expect(TokColon)
			loTok := p.expect(TokNumber)
			p.expect(TokRAngle)
			r.HasSel = true
			r.Hi, r.Lo = int(hiTok.Val), int(loTok.Val)
			if r.Hi < r.Lo {
				p.errorf(hiTok.Pos, "bit slice <%d:%d> has hi < lo", r.Hi, r.Lo)
				r.Hi = r.Lo
			}
		}
		return r
	}
	p.errorf(t.Pos, "expected expression, found %s", t)
	p.advance()
	return &Num{Pos: t.Pos, Value: 0}
}
