package isps

import "fmt"

// Analyze resolves names, folds named constants, infers expression widths,
// and checks the static semantics of a parsed program:
//
//   - unique carrier, constant, and procedure names; exactly one entry body
//   - calls resolve to declared procedures; the call graph is acyclic
//   - bit slices lie within the declared range of their carrier
//   - memory references carry an index; scalar references do not
//   - input ports are read-only, output ports write-only
//   - an assignment never silently truncates: the source width must not
//     exceed the destination width (narrower sources zero-extend, as in ISPS)
//   - decode case values fit the selector width and are pairwise distinct
//
// Analyze mutates the program in place; on failure it returns an ErrorList.
func Analyze(prog *Program) error {
	a := &analyzer{prog: prog}
	a.collect()
	a.checkProcs()
	return a.errs.Err()
}

type analyzer struct {
	prog *Program
	errs ErrorList
}

func (a *analyzer) errorf(pos Pos, format string, args ...any) {
	a.errs = append(a.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (a *analyzer) collect() {
	p := a.prog
	p.symbols = make(map[string]*Decl, len(p.Decls))
	p.procs = make(map[string]*Proc, len(p.Procs))
	if p.Consts == nil {
		p.Consts = map[string]uint64{}
	}
	for _, d := range p.Decls {
		if prev, ok := p.symbols[d.Name]; ok {
			a.errorf(d.Pos, "%s redeclared (previous declaration at %s)", d.Name, prev.Pos)
			continue
		}
		p.symbols[d.Name] = d
		if d.Kind == DeclConst {
			p.Consts[d.Name] = d.Value
		}
		if d.Kind == DeclMem && d.Words() < 1 {
			a.errorf(d.Pos, "memory %s has no words", d.Name)
		}
	}
	for _, pr := range p.Procs {
		if prev, ok := p.procs[pr.Name]; ok {
			a.errorf(pr.Pos, "procedure %s redeclared (previous declaration at %s)", pr.Name, prev.Pos)
			continue
		}
		if _, clash := p.symbols[pr.Name]; clash {
			a.errorf(pr.Pos, "procedure %s collides with a carrier of the same name", pr.Name)
		}
		p.procs[pr.Name] = pr
		if pr.IsMain {
			if p.Main != nil {
				a.errorf(pr.Pos, "multiple entry bodies (previous at %s)", p.Main.Pos)
			} else {
				p.Main = pr
			}
		}
	}
	if p.Main == nil && len(p.Procs) > 0 {
		a.errorf(p.Procs[0].Pos, "no entry body: declare one procedure with 'main'")
	}
	if len(p.Procs) == 0 {
		a.errorf(Pos{File: "", Line: 1, Col: 1}, "processor %s has no behavior", p.Name)
	}
}

func (a *analyzer) checkProcs() {
	for _, pr := range a.prog.Procs {
		a.checkStmts(pr.Body, false)
	}
	a.checkCallGraph()
}

// checkCallGraph rejects recursion: the Value Trace expansion is finite only
// for an acyclic call graph.
func (a *analyzer) checkCallGraph() {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[*Proc]int{}
	var visit func(pr *Proc) bool
	var walkStmts func(stmts []Stmt) bool
	walkStmts = func(stmts []Stmt) bool {
		for _, s := range stmts {
			switch s := s.(type) {
			case *Call:
				if s.Callee != nil && !visit(s.Callee) {
					a.errorf(s.Pos, "recursive call to %s (the value trace requires an acyclic call graph)", s.Name)
					return false
				}
			case *If:
				if !walkStmts(s.Then) || !walkStmts(s.Else) {
					return false
				}
			case *While:
				if !walkStmts(s.Body) {
					return false
				}
			case *Repeat:
				if !walkStmts(s.Body) {
					return false
				}
			case *Decode:
				for _, c := range s.Cases {
					if !walkStmts(c.Body) {
						return false
					}
				}
				if !walkStmts(s.Otherwise) {
					return false
				}
			}
		}
		return true
	}
	visit = func(pr *Proc) bool {
		switch color[pr] {
		case gray:
			return false
		case black:
			return true
		}
		color[pr] = gray
		ok := walkStmts(pr.Body)
		color[pr] = black
		return ok
	}
	for _, pr := range a.prog.Procs {
		visit(pr)
	}
}

func (a *analyzer) checkStmts(stmts []Stmt, inLoop bool) {
	for _, s := range stmts {
		a.checkStmt(s, inLoop)
	}
}

func (a *analyzer) checkStmt(s Stmt, inLoop bool) {
	switch s := s.(type) {
	case *Assign:
		a.checkAssign(s)
	case *If:
		a.inferExpr(s.Cond, 0)
		a.checkStmts(s.Then, inLoop)
		a.checkStmts(s.Else, inLoop)
	case *Decode:
		w := a.inferExpr(s.Selector, 0)
		seen := map[uint64]Pos{}
		for _, c := range s.Cases {
			for _, v := range c.Values {
				if w > 0 && w < 64 && v >= 1<<uint(w) {
					a.errorf(c.Pos, "case value %d does not fit selector width %d", v, w)
				}
				if prev, dup := seen[v]; dup {
					a.errorf(c.Pos, "duplicate case value %d (previous at %s)", v, prev)
				} else {
					seen[v] = c.Pos
				}
			}
			a.checkStmts(c.Body, inLoop)
		}
		a.checkStmts(s.Otherwise, inLoop)
	case *While:
		a.inferExpr(s.Cond, 0)
		a.checkStmts(s.Body, true)
	case *Repeat:
		a.checkStmts(s.Body, true)
	case *Call:
		callee := a.prog.procs[s.Name]
		if callee == nil {
			a.errorf(s.Pos, "call to undeclared procedure %s", s.Name)
			return
		}
		s.Callee = callee
	case *Leave:
		if !inLoop {
			a.errorf(s.Pos, "leave outside of a loop")
		}
	case *Nop:
	}
}

func (a *analyzer) checkAssign(s *Assign) {
	lw := a.checkLValue(s.LHS)
	rw := a.inferExpr(s.RHS, lw)
	if lw == 0 || rw == 0 {
		return // earlier error
	}
	if n, ok := s.RHS.(*Num); ok {
		if lw < 64 && n.Value >= 1<<uint(lw) {
			a.errorf(n.Pos, "constant %d does not fit destination %s (width %d)", n.Value, s.LHS, lw)
		}
		return
	}
	if rw > lw {
		a.errorf(s.Pos, "cannot assign %d-bit value to %d-bit destination %s (no implicit truncation)", rw, lw, s.LHS)
	}
}

// checkLValue resolves and validates a destination, returning its width.
func (a *analyzer) checkLValue(lv *LValue) int {
	d := a.prog.symbols[lv.Name]
	if d == nil {
		a.errorf(lv.Pos, "assignment to undeclared carrier %s", lv.Name)
		return 0
	}
	lv.Decl = d
	switch d.Kind {
	case DeclConst:
		a.errorf(lv.Pos, "cannot assign to constant %s", lv.Name)
		return 0
	case DeclPortIn:
		a.errorf(lv.Pos, "cannot assign to input port %s", lv.Name)
		return 0
	case DeclMem:
		if lv.Index == nil {
			a.errorf(lv.Pos, "memory %s requires an index", lv.Name)
			return 0
		}
		a.checkMemIndex(d, lv.Index, lv.Pos)
	default:
		if lv.Index != nil {
			a.errorf(lv.Pos, "%s %s is not indexable", d.Kind, lv.Name)
			return 0
		}
	}
	if lv.HasSel {
		if d.Kind == DeclMem {
			a.errorf(lv.Pos, "bit slices of memory words are not supported on the left-hand side")
			return 0
		}
		if lv.Lo < d.Lo || lv.Hi > d.Hi {
			a.errorf(lv.Pos, "slice <%d:%d> outside declared range %s<%d:%d>", lv.Hi, lv.Lo, d.Name, d.Hi, d.Lo)
			return 0
		}
		return lv.Hi - lv.Lo + 1
	}
	return d.Width()
}

func (a *analyzer) checkMemIndex(d *Decl, idx Expr, pos Pos) {
	w := a.inferExpr(idx, 0)
	if n, ok := idx.(*Num); ok {
		if int(n.Value) < d.ALo || int(n.Value) > d.AHi {
			a.errorf(pos, "index %d outside memory range %s[%d:%d]", n.Value, d.Name, d.ALo, d.AHi)
		}
	}
	_ = w
}

// inferExpr computes and stores the width of e. ctx is the width the
// surrounding context supplies for bare constants (0 when unknown);
// non-constant expressions derive width from their operands alone.
func (a *analyzer) inferExpr(e Expr, ctx int) int {
	switch e := e.(type) {
	case *Num:
		w := minWidth(e.Value)
		if ctx > w {
			w = ctx
		}
		e.Width = w
		return w
	case *Ref:
		return a.inferRef(e)
	case *UnOp:
		w := a.inferExpr(e.X, ctx)
		e.Width = w
		return w
	case *BinOp:
		return a.inferBinOp(e, ctx)
	}
	return 0
}

func (a *analyzer) inferRef(e *Ref) int {
	// Named constants fold to their value with minimal width.
	if v, ok := a.prog.Consts[e.Name]; ok {
		if e.HasSel || e.Index != nil {
			a.errorf(e.Pos, "constant %s cannot be sliced or indexed", e.Name)
			return 0
		}
		e.Decl = a.prog.symbols[e.Name]
		e.Width = minWidth(v)
		return e.Width
	}
	d := a.prog.symbols[e.Name]
	if d == nil {
		a.errorf(e.Pos, "reference to undeclared carrier %s", e.Name)
		return 0
	}
	e.Decl = d
	switch d.Kind {
	case DeclPortOut:
		a.errorf(e.Pos, "output port %s cannot be read", e.Name)
		return 0
	case DeclMem:
		if e.Index == nil {
			a.errorf(e.Pos, "memory %s requires an index", e.Name)
			return 0
		}
		a.checkMemIndex(d, e.Index, e.Pos)
	default:
		if e.Index != nil {
			a.errorf(e.Pos, "%s %s is not indexable", d.Kind, e.Name)
			return 0
		}
	}
	if e.HasSel {
		if d.Kind == DeclMem {
			// Slice of a memory word: bounds are relative to the word range.
			if e.Lo < d.Lo || e.Hi > d.Hi {
				a.errorf(e.Pos, "slice <%d:%d> outside word range %s<%d:%d>", e.Hi, e.Lo, d.Name, d.Hi, d.Lo)
				return 0
			}
		} else if e.Lo < d.Lo || e.Hi > d.Hi {
			a.errorf(e.Pos, "slice <%d:%d> outside declared range %s<%d:%d>", e.Hi, e.Lo, d.Name, d.Hi, d.Lo)
			return 0
		}
		e.Width = e.Hi - e.Lo + 1
		return e.Width
	}
	e.Width = d.Width()
	return e.Width
}

func (a *analyzer) inferBinOp(e *BinOp, ctx int) int {
	switch {
	case e.Op == OpConcat:
		xw := a.inferExpr(e.X, 0)
		yw := a.inferExpr(e.Y, 0)
		e.Width = xw + yw
		return e.Width
	case e.Op.IsCompare():
		xw := a.inferExpr(e.X, 0)
		yw := a.inferExpr(e.Y, 0)
		// Re-widen the constant side to match the other operand.
		if xw < yw {
			a.inferExpr(e.X, yw)
		} else if yw < xw {
			a.inferExpr(e.Y, xw)
		}
		e.Width = 1
		return 1
	case e.Op == OpSll || e.Op == OpSrl:
		xw := a.inferExpr(e.X, ctx)
		a.inferExpr(e.Y, 0)
		e.Width = xw
		return xw
	default: // arithmetic and bitwise: width is the wider operand
		xw := a.inferExpr(e.X, ctx)
		yw := a.inferExpr(e.Y, ctx)
		w := xw
		if yw > w {
			w = yw
		}
		// Give bare constants the operator's width so hardware matches.
		if xw < w {
			a.inferExpr(e.X, w)
		}
		if yw < w {
			a.inferExpr(e.Y, w)
		}
		e.Width = w
		return w
	}
}
