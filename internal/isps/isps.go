// Package isps implements the front end for an ISPS-flavored behavioral
// hardware description language — the input notation of the VLSI Design
// Automation Assistant (Kowalski & Thomas, DAC 1983).
//
// ISPS (Instruction Set Processor Specification, Barbacci 1981) described a
// processor as a set of carriers (registers, memories, ports) plus named
// behavior bodies built from register transfers, DECODE branches,
// conditionals, and loops. This package accepts a faithful subset with a
// brace-delimited surface syntax:
//
//	processor Mark1 {
//	    reg  ACC<7:0>                ! an 8-bit register
//	    reg  PC<11:0>
//	    mem  M[0:255]<7:0>           ! 256 words of 8 bits
//	    port in  IRQ                 ! 1-bit input port
//	    const OPW = 3
//
//	    proc fetch {
//	        IR := M[PC]
//	        PC := PC + 1
//	    }
//	    main cycle {
//	        call fetch
//	        decode IR<7:5> {
//	            0: ACC := ACC + M[IR<4:0>]
//	            1: ACC := ACC - M[IR<4:0>]
//	            otherwise: nop
//	        }
//	        if ACC eql 0 { Z := 1 } else { Z := 0 }
//	        while CNT neq 0 { CNT := CNT - 1 }
//	    }
//	}
//
// Comments run from '!' to end of line, as in ISPS. Operators use the ISPS
// word vocabulary (and, or, xor, not, eql, neq, lss, leq, gtr, geq, sll,
// srl) plus infix + and -; '@' is concatenation and '<hi:lo>' selects bits.
//
// Parse produces an AST with all names resolved and all expression widths
// inferred; internal/vt lowers that AST to the Value Trace consumed by the
// synthesis rules in internal/core.
package isps
