package isps

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

// wrap builds a minimal program around one main body.
func wrap(decls, body string) string {
	return fmt.Sprintf("processor T {\n%s\nmain m {\n%s\n}\n}", decls, body)
}

func TestSemaErrors(t *testing.T) {
	cases := []struct {
		name, decls, body, wantSub string
	}{
		{"undeclared-lhs", "reg A<7:0>", "B := A", "undeclared carrier B"},
		{"undeclared-rhs", "reg A<7:0>", "A := B", "undeclared carrier B"},
		{"redeclared", "reg A<7:0> reg A<3:0>", "A := 1", "redeclared"},
		{"assign-const", "const K = 1", "K := 2", "cannot assign to constant"},
		{"assign-in-port", "port in X<7:0>", "X := 1", "cannot assign to input port"},
		{"read-out-port", "port out Y<7:0> reg A<7:0>", "A := Y", "output port Y cannot be read"},
		{"mem-no-index", "mem M[0:3]<7:0> reg A<7:0>", "A := M", "requires an index"},
		{"reg-indexed", "reg A<7:0> reg B<7:0>", "A := B[0]", "not indexable"},
		{"slice-oob", "reg A<7:0> reg B<3:0>", "B := A<11:8>", "outside declared range"},
		{"lhs-slice-oob", "reg A<7:0>", "A<9:8> := 1", "outside declared range"},
		{"truncation", "reg A<7:0> reg W<15:0>", "A := W", "no implicit truncation"},
		{"const-too-big", "reg A<3:0>", "A := 16", "does not fit destination"},
		{"case-too-big", "reg A<1:0>", "decode A { 5: nop }", "does not fit selector"},
		{"dup-case", "reg A<1:0>", "decode A { 1: nop 1: nop }", "duplicate case value"},
		{"undeclared-call", "reg A<7:0>", "call nothere", "undeclared procedure"},
		{"leave-outside", "reg A<7:0>", "leave", "leave outside of a loop"},
		{"const-sliced", "const K = 3 reg A<7:0>", "A := K<1:0>", "cannot be sliced"},
		{"mem-index-oob", "mem M[0:3]<7:0> reg A<7:0>", "A := M[9]", "outside memory range"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse("t", wrap(c.decls, c.body))
			if err == nil {
				t.Fatal("expected semantic error, got none")
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("error %q does not contain %q", err, c.wantSub)
			}
		})
	}
}

func TestSemaValid(t *testing.T) {
	cases := []struct{ name, decls, body string }{
		{"zero-extend", "reg A<7:0> reg B<3:0>", "A := B"},
		{"const-fits", "reg A<3:0>", "A := 15"},
		{"named-const", "const K = 7 reg A<7:0>", "A := A + K"},
		{"mem-rw", "mem M[0:15]<7:0> reg A<7:0> reg P<3:0>", "M[P] := A  A := M[P]"},
		{"slice-rw", "reg A<7:0> reg B<3:0>", "B := A<3:0>  A<7:4> := B"},
		{"compare-any-width", "reg A<7:0> reg Z", "Z := A gtr 5"},
		{"if-wide-cond", "reg A<7:0> reg Z", "if A { Z := 1 }"},
		{"concat", "reg A<3:0> reg B<3:0> reg W<7:0>", "W := A @ B"},
		{"leave-in-while", "reg A<7:0>", "while A neq 0 { A := A - 1 leave }"},
		{"leave-in-repeat", "reg A<7:0>", "repeat 2 { leave }"},
		{"word-slice-read", "mem M[0:3]<7:0> reg B<3:0> reg P<1:0>", "B := M[P]<3:0>"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Parse("t", wrap(c.decls, c.body)); err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
		})
	}
}

func TestSemaRecursionRejected(t *testing.T) {
	src := `
processor P {
    reg A<7:0>
    proc a { call b }
    proc b { call a }
    main m { call a }
}`
	_, err := Parse("t", src)
	if err == nil || !strings.Contains(err.Error(), "recursive") {
		t.Fatalf("got %v, want recursion error", err)
	}
}

func TestSemaSelfRecursionRejected(t *testing.T) {
	src := `
processor P {
    reg A<7:0>
    proc a { call a }
    main m { call a }
}`
	_, err := Parse("t", src)
	if err == nil || !strings.Contains(err.Error(), "recursive") {
		t.Fatalf("got %v, want recursion error", err)
	}
}

func TestSemaNoMain(t *testing.T) {
	_, err := Parse("t", `processor P { reg A<7:0> proc a { A := 1 } }`)
	if err == nil || !strings.Contains(err.Error(), "no entry body") {
		t.Fatalf("got %v, want missing-main error", err)
	}
}

func TestSemaMultipleMains(t *testing.T) {
	_, err := Parse("t", `processor P { reg A main a { A := 1 } main b { A := 0 } }`)
	if err == nil || !strings.Contains(err.Error(), "multiple entry bodies") {
		t.Fatalf("got %v, want multiple-main error", err)
	}
}

func TestSemaWidthInference(t *testing.T) {
	prog, err := Parse("t", wrap(
		"reg A<7:0> reg B<3:0> reg Z reg W<11:0>",
		`W := (A + 1) @ B
         Z := B lss A`))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	concat := prog.Main.Body[0].(*Assign).RHS.(*BinOp)
	if concat.Width != 12 {
		t.Errorf("concat width %d, want 12", concat.Width)
	}
	add := concat.X.(*BinOp)
	if add.Width != 8 {
		t.Errorf("add width %d, want 8", add.Width)
	}
	cmp := prog.Main.Body[1].(*Assign).RHS.(*BinOp)
	if cmp.Width != 1 {
		t.Errorf("compare width %d, want 1", cmp.Width)
	}
}

func TestSemaConstantWidensToContext(t *testing.T) {
	prog, err := Parse("t", wrap("reg A<15:0>", "A := A + 1"))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	add := prog.Main.Body[0].(*Assign).RHS.(*BinOp)
	one := add.Y.(*Num)
	if one.Width != 16 {
		t.Errorf("constant width %d, want 16 (widened by context)", one.Width)
	}
}

func TestSemaShiftWidth(t *testing.T) {
	prog, err := Parse("t", wrap("reg A<7:0> reg N<2:0>", "A := A sll N"))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	sh := prog.Main.Body[0].(*Assign).RHS.(*BinOp)
	if sh.Width != 8 {
		t.Errorf("shift width %d, want 8 (left operand)", sh.Width)
	}
}

func TestMinWidth(t *testing.T) {
	cases := []struct {
		v uint64
		w int
	}{{0, 1}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {255, 8}, {256, 9}, {1 << 40, 41}}
	for _, c := range cases {
		if got := minWidth(c.v); got != c.w {
			t.Errorf("minWidth(%d) = %d, want %d", c.v, got, c.w)
		}
	}
}

// Property: minWidth(v) is the unique w with 2^(w-1) <= v < 2^w (v>0).
func TestMinWidthProperty(t *testing.T) {
	f := func(v uint64) bool {
		if v == 0 {
			return minWidth(v) == 1
		}
		w := minWidth(v)
		if w < 1 || w > 64 {
			return false
		}
		lo := uint64(1) << uint(w-1)
		if v < lo {
			return false
		}
		return w == 64 || v < uint64(1)<<uint(w)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a generated straight-line program over random register widths
// always parses and analyzes cleanly.
func TestSemaGeneratedProgramsValid(t *testing.T) {
	f := func(widths []uint8, seed uint32) bool {
		if len(widths) == 0 {
			return true
		}
		if len(widths) > 8 {
			widths = widths[:8]
		}
		var decls, body strings.Builder
		for i, w8 := range widths {
			w := int(w8%16) + 1
			fmt.Fprintf(&decls, "reg R%d<%d:0>\n", i, w-1)
		}
		// Each statement assigns a register to itself combined with itself:
		// widths always agree.
		for i := range widths {
			op := []string{"+", "and", "or", "xor"}[int(seed)%4]
			fmt.Fprintf(&body, "R%d := R%d %s R%d\n", i, i, op, i)
			seed = seed*1664525 + 1013904223
		}
		_, err := Parse("t", wrap(decls.String(), body.String()))
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDeclStringForms(t *testing.T) {
	cases := []struct{ src, want string }{
		{"reg A<7:0>", "reg A<7:0>"},
		{"mem M[0:255]<7:0>", "mem M[0:255]<7:0>"},
		{"port in X<3:0>", "port in X<3:0>"},
		{"const K = 9", "const K = 9"},
	}
	for _, c := range cases {
		prog, err := Parse("t", wrap(c.src+"\nreg DUMMY", "DUMMY := 1"))
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		if got := prog.Decls[0].String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestExprStringForms(t *testing.T) {
	prog, err := Parse("t", wrap("reg A<7:0> reg B<7:0> mem M[0:3]<7:0>",
		"B := not (A + M[1]<3:0>)"))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	got := prog.Main.Body[0].(*Assign).RHS.String()
	want := "(not (A + M[1]<3:0>))"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestLValueString(t *testing.T) {
	prog, err := Parse("t", wrap("reg A<7:0> mem M[0:3]<7:0> reg P<1:0>",
		"A<3:0> := 1\nM[P] := A"))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := prog.Main.Body[0].(*Assign).LHS.String(); got != "A<3:0>" {
		t.Errorf("lvalue 0 = %q", got)
	}
	if got := prog.Main.Body[1].(*Assign).LHS.String(); got != "M[P]" {
		t.Errorf("lvalue 1 = %q", got)
	}
}
