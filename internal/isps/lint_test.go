package isps

import (
	"testing"
)

func lintOf(t *testing.T, src string) []Warning {
	t.Helper()
	prog, err := Parse("t", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Lint(prog)
}

func codes(ws []Warning) map[string]int {
	out := map[string]int{}
	for _, w := range ws {
		out[w.Code]++
	}
	return out
}

func TestLintCleanProgram(t *testing.T) {
	ws := lintOf(t, `
processor P {
    reg A<7:0>
    port in  X<7:0>
    port out Y<7:0>
    main m {
        A := A + X
        Y := A
    }
}`)
	if len(ws) != 0 {
		t.Fatalf("clean program warned: %v", ws)
	}
}

func TestLintUnusedCarrier(t *testing.T) {
	ws := lintOf(t, `
processor P {
    reg A<7:0>
    reg GHOST<7:0>
    main m { A := A + 1 }
}`)
	if codes(ws)["unused-carrier"] != 1 {
		t.Fatalf("want one unused-carrier, got %v", ws)
	}
}

func TestLintReadWriteDiscipline(t *testing.T) {
	ws := lintOf(t, `
processor P {
    reg RD<7:0>     ! read, never written
    reg WR<7:0>     ! written, never read
    port in  UNIN<3:0>
    port out UNOUT<3:0>
    main m { WR := RD }
}`)
	c := codes(ws)
	if c["never-written"] != 1 { // RD; the untouched ports are unused-carrier
		t.Errorf("never-written %d, want 1: %v", c["never-written"], ws)
	}
	if c["write-only-register"] != 1 {
		t.Errorf("write-only-register %d, want 1: %v", c["write-only-register"], ws)
	}
	if c["unused-carrier"] != 2 {
		t.Errorf("unused-carrier %d, want 2: %v", c["unused-carrier"], ws)
	}
}

func TestLintConstantConditions(t *testing.T) {
	ws := lintOf(t, `
processor P {
    reg A<7:0>
    main m {
        if 1 { A := 1 }
        while 0 { A := 2 }
    }
}`)
	if codes(ws)["constant-condition"] != 2 {
		t.Fatalf("want two constant-condition warnings, got %v", ws)
	}
}

func TestLintSelfAssignment(t *testing.T) {
	ws := lintOf(t, `
processor P {
    reg A<7:0>
    reg B<7:0>
    main m {
        A := A
        B := A      ! fine
        A<3:0> := A<3:0>
        A<7:4> := A<3:0>  ! different fields: fine
    }
}`)
	if codes(ws)["self-assignment"] != 2 {
		t.Fatalf("want two self-assignments, got %v", ws)
	}
}

func TestLintIncompleteDecode(t *testing.T) {
	ws := lintOf(t, `
processor P {
    reg A<1:0>
    reg B<7:0>
    main m {
        decode A { 0: B := 1  1: B := 2 }
    }
}`)
	if codes(ws)["incomplete-decode"] != 1 {
		t.Fatalf("want incomplete-decode, got %v", ws)
	}
	// With otherwise: clean.
	ws = lintOf(t, `
processor P {
    reg A<1:0>
    reg B<7:0>
    main m {
        decode A { 0: B := 1 otherwise: nop }
    }
}`)
	if codes(ws)["incomplete-decode"] != 0 {
		t.Fatalf("otherwise arm should silence the warning: %v", ws)
	}
	// Full coverage without otherwise: clean.
	ws = lintOf(t, `
processor P {
    reg A<1:0>
    reg B<7:0>
    main m {
        decode A { 0: B := 1  1: B := 2  2: B := 3  3: B := 4 }
    }
}`)
	if codes(ws)["incomplete-decode"] != 0 {
		t.Fatalf("full coverage should be clean: %v", ws)
	}
}

func TestLintUnreachableDecode(t *testing.T) {
	// Otherwise behind full case coverage never runs.
	ws := lintOf(t, `
processor P {
    reg A<1:0>
    reg B<7:0>
    main m {
        decode A { 0: B := 1  1: B := 2  2: B := 3  3: B := 4 otherwise: B := 5 }
    }
}`)
	if codes(ws)["unreachable-decode"] != 1 {
		t.Fatalf("want one unreachable-decode for the dead otherwise, got %v", ws)
	}
	// A constant selector makes every non-matching case dead.
	ws = lintOf(t, `
processor P {
    reg B<7:0>
    main m {
        decode 2 { 0: B := 1  2: B := 2  3: B := 3 }
    }
}`)
	if codes(ws)["unreachable-decode"] != 2 { // cases 0 and 3
		t.Fatalf("want two unreachable cases under constant selector 2, got %v", ws)
	}
	// Reachable otherwise stays silent.
	ws = lintOf(t, `
processor P {
    reg A<1:0>
    reg B<7:0>
    main m {
        decode A { 0: B := 1  1: B := 2 otherwise: B := 3 }
    }
}`)
	if codes(ws)["unreachable-decode"] != 0 {
		t.Fatalf("live otherwise flagged: %v", ws)
	}
}

func TestLintWidthMismatch(t *testing.T) {
	ws := lintOf(t, `
processor P {
    reg A<7:0>
    reg B<3:0>
    reg F<0:0>
    main m {
        if A eql B { F := 1 }       ! 8-bit vs 4-bit: flagged
        if A<3:0> eql B { F := 0 }  ! sliced to match: clean
        if A gtr 200 { F := 1 }     ! constant re-widened by sema: clean
    }
}`)
	if codes(ws)["width-mismatch"] != 1 {
		t.Fatalf("want exactly one width-mismatch, got %v", ws)
	}
}

func TestLintProcedures(t *testing.T) {
	ws := lintOf(t, `
processor P {
    reg A<7:0>
    proc used { A := A + 1 }
    proc orphan { A := A - 1 }
    proc hollow { }
    main m { call used }
}`)
	c := codes(ws)
	if c["unused-procedure"] != 2 { // orphan and hollow
		t.Errorf("unused-procedure %d, want 2: %v", c["unused-procedure"], ws)
	}
	if c["empty-procedure"] != 1 {
		t.Errorf("empty-procedure %d, want 1: %v", c["empty-procedure"], ws)
	}
}

func TestLintDeterministicOrder(t *testing.T) {
	src := `
processor P {
    reg Z1<7:0>
    reg Z2<7:0>
    main m { Z1 := Z1 }
}`
	a := lintOf(t, src)
	b := lintOf(t, src)
	if len(a) != len(b) {
		t.Fatal("nondeterministic count")
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("order differs: %v vs %v", a[i], b[i])
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i-1].Pos.Line > a[i].Pos.Line {
			t.Fatal("warnings not sorted by position")
		}
	}
}
