package isps

import (
	"strings"
	"testing"
	"testing/quick"
)

func kinds(toks []Token) []TokenKind {
	out := make([]TokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasicTokens(t *testing.T) {
	toks, errs := lexAll("t", "processor P { reg A<7:0> }")
	if err := errs.Err(); err != nil {
		t.Fatalf("lex errors: %v", err)
	}
	want := []TokenKind{
		TokProcessor, TokIdent, TokLBrace, TokReg, TokIdent,
		TokLAngle, TokNumber, TokColon, TokNumber, TokRAngle,
		TokRBrace, TokEOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestLexNumbers(t *testing.T) {
	cases := []struct {
		src  string
		want uint64
	}{
		{"0", 0},
		{"42", 42},
		{"0xff", 255},
		{"0xFF", 255},
		{"0b1010", 10},
		{"1_000", 1000},
		{"0x1_F", 31},
		{"65535", 65535},
	}
	for _, c := range cases {
		toks, errs := lexAll("t", c.src)
		if err := errs.Err(); err != nil {
			t.Errorf("%q: lex error %v", c.src, err)
			continue
		}
		if toks[0].Kind != TokNumber {
			t.Errorf("%q: got %s, want number", c.src, toks[0])
			continue
		}
		if toks[0].Val != c.want {
			t.Errorf("%q: got %d, want %d", c.src, toks[0].Val, c.want)
		}
	}
}

func TestLexMalformedNumber(t *testing.T) {
	_, errs := lexAll("t", "0x")
	if errs.Err() == nil {
		t.Fatal("expected error for bare 0x")
	}
}

func TestLexComments(t *testing.T) {
	toks, errs := lexAll("t", "reg ! this is a comment\nmem")
	if err := errs.Err(); err != nil {
		t.Fatalf("lex errors: %v", err)
	}
	got := kinds(toks)
	want := []TokenKind{TokReg, TokMem, TokEOF}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestLexKeywordsCaseInsensitive(t *testing.T) {
	toks, errs := lexAll("t", "DECODE Decode decode")
	if err := errs.Err(); err != nil {
		t.Fatalf("lex errors: %v", err)
	}
	for i := 0; i < 3; i++ {
		if toks[i].Kind != TokDecode {
			t.Errorf("token %d: got %s, want decode", i, toks[i])
		}
	}
}

func TestLexOperators(t *testing.T) {
	toks, errs := lexAll("t", ":= : @ + - = ; , ( ) [ ] < >")
	if err := errs.Err(); err != nil {
		t.Fatalf("lex errors: %v", err)
	}
	want := []TokenKind{
		TokAssign, TokColon, TokConcat, TokPlus, TokMinus, TokEquals,
		TokSemi, TokComma, TokLParen, TokRParen, TokLBracket, TokRBracket,
		TokLAngle, TokRAngle, TokEOF,
	}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, _ := lexAll("f.isps", "reg\n  mem")
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("reg at %v, want 1:1", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("mem at %v, want 2:3", toks[1].Pos)
	}
	if toks[0].Pos.File != "f.isps" {
		t.Errorf("file %q, want f.isps", toks[0].Pos.File)
	}
}

func TestLexUnexpectedCharRecovers(t *testing.T) {
	toks, errs := lexAll("t", "reg # mem")
	if errs.Err() == nil {
		t.Fatal("expected error for '#'")
	}
	got := kinds(toks)
	want := []TokenKind{TokReg, TokMem, TokEOF}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

// Property: lexing never panics and always terminates with EOF, for
// arbitrary input bytes.
func TestLexArbitraryInputTerminates(t *testing.T) {
	f := func(src string) bool {
		toks, _ := lexAll("t", src)
		return len(toks) > 0 && toks[len(toks)-1].Kind == TokEOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: every decimal literal round-trips through the lexer.
func TestLexDecimalRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		src := strings.TrimSpace(" " + itoa(uint64(v)))
		toks, errs := lexAll("t", src)
		if errs.Err() != nil || len(toks) != 2 {
			return false
		}
		return toks[0].Kind == TokNumber && toks[0].Val == uint64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
