package cost

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rtl"
	"repro/internal/vt"
)

func TestEmptyDesignCostsNothing(t *testing.T) {
	d := rtl.NewDesign("t", nil)
	b := Default().Design(d)
	if b.Datapath != 0 || b.Memory != 0 {
		t.Fatalf("empty design costs %v", b)
	}
}

func TestRegisterCost(t *testing.T) {
	d := rtl.NewDesign("t", nil)
	d.AddRegister("A", 8)
	b := Default().Design(d)
	if b.Registers != 64 { // 8 bits x 8 gates
		t.Errorf("register cost %.1f, want 64", b.Registers)
	}
}

func TestUnitCostSharesDatapath(t *testing.T) {
	m := Default()
	single := rtl.NewDesign("t", nil)
	single.AddUnit("add", 8, vt.OpAdd)
	alu := rtl.NewDesign("t", nil)
	alu.AddUnit("alu", 8, vt.OpAdd, vt.OpSub, vt.OpAnd)
	adder := m.Design(single).Units
	aluCost := m.Design(alu).Units
	// A 3-function ALU costs its most expensive function (sub, 14/bit)
	// plus select logic, far less than the sum of three units.
	want := (14 + 2*2) * 8.0
	if aluCost != want {
		t.Errorf("ALU cost %.1f, want %.1f", aluCost, want)
	}
	if aluCost >= 3*adder {
		t.Errorf("ALU (%.1f) should be much cheaper than three units (%.1f)", aluCost, 3*adder)
	}
}

func TestUnknownFnDefaultWeight(t *testing.T) {
	d := rtl.NewDesign("t", nil)
	d.AddUnit("u", 4, vt.OpConcat) // not in the table
	b := Default().Design(d)
	if b.Units != 16 { // 4 gates/bit default x 4 bits
		t.Errorf("unknown-fn cost %.1f, want 16", b.Units)
	}
}

func TestMuxAndLinkCosts(t *testing.T) {
	d := rtl.NewDesign("t", nil)
	a := d.AddRegister("A", 8)
	c := d.AddRegister("C", 8)
	mx := d.AddMux("m", 8, 3)
	d.AddLink(rtl.Endpoint{Kind: rtl.EPRegOut, Comp: a}, rtl.Endpoint{Kind: rtl.EPMuxIn, Comp: mx}, 8)
	d.AddLink(rtl.Endpoint{Kind: rtl.EPMuxOut, Comp: mx}, rtl.Endpoint{Kind: rtl.EPRegIn, Comp: c}, 8)
	b := Default().Design(d)
	if b.Muxes != 36 { // 3 ways x 8 bits x 1.5
		t.Errorf("mux cost %.1f, want 36", b.Muxes)
	}
	if b.Links != 4.8 { // 16 bits x 0.3
		t.Errorf("link cost %.1f, want 4.8", b.Links)
	}
}

func TestMemorySeparateFromDatapath(t *testing.T) {
	d := rtl.NewDesign("t", nil)
	d.AddMemory("M", 8, 1024)
	b := Default().Design(d)
	if b.Memory == 0 {
		t.Error("memory not costed")
	}
	if b.Datapath != 0 {
		t.Errorf("memory leaked into datapath: %.1f", b.Datapath)
	}
}

func TestControlCost(t *testing.T) {
	d := rtl.NewDesign("t", nil)
	d.AddState("main", 0)
	d.AddState("main", 1)
	b := Default().Design(d)
	if b.Control != 24 {
		t.Errorf("control cost %.1f, want 24", b.Control)
	}
}

func TestRatio(t *testing.T) {
	m := Default()
	small := rtl.NewDesign("t", nil)
	small.AddRegister("A", 8)
	big := rtl.NewDesign("t", nil)
	big.AddRegister("A", 8)
	big.AddRegister("B", 8)
	if r := m.Ratio(big, small); r != 2 {
		t.Errorf("ratio %.2f, want 2", r)
	}
	empty := rtl.NewDesign("t", nil)
	if r := m.Ratio(small, empty); r != 0 {
		t.Errorf("ratio vs empty %.2f, want 0", r)
	}
}

func TestBreakdownString(t *testing.T) {
	d := rtl.NewDesign("t", nil)
	d.AddRegister("A", 8)
	s := Default().Design(d).String()
	if !strings.Contains(s, "datapath=") || !strings.Contains(s, "regs=64") {
		t.Errorf("breakdown string %q", s)
	}
}

// Property: datapath cost is monotone in added registers and always equals
// the sum of its parts.
func TestCostMonotoneProperty(t *testing.T) {
	m := Default()
	f := func(widths []uint8) bool {
		d := rtl.NewDesign("t", nil)
		prev := 0.0
		for i, w8 := range widths {
			if i > 20 {
				break
			}
			w := int(w8%16) + 1
			d.AddRegister("r", w)
			b := m.Design(d)
			sum := b.Registers + b.Units + b.Muxes + b.Links + b.Consts + b.Ports + b.Control
			if b.Datapath != sum {
				return false
			}
			if b.Datapath <= prev {
				return false
			}
			prev = b.Datapath
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
