// Package cost attaches technology-independent gate-equivalent weights to
// register-transfer designs, so allocations can be compared the way the
// DAA paper series compared them: by counting hardware, not by layout.
//
// The weights are classical gate-equivalent figures of the TTL/NMOS era
// (a master-slave flip-flop ≈ 8 gates, a full adder ≈ 12 gates per bit, a
// 2-way multiplexer ≈ 3 gates per bit). Absolute numbers are irrelevant to
// the experiments — only ratios between allocators matter — but the
// relative weighting of registers vs. operators vs. interconnect follows
// the same order the paper's expert designers used when judging designs.
package cost

import (
	"fmt"

	"repro/internal/rtl"
	"repro/internal/vt"
)

// Model holds gate-equivalent weights.
type Model struct {
	RegBit    float64               // per register bit
	MemBit    float64               // per memory bit (off-datapath, reported separately)
	MuxWayBit float64               // per multiplexer way per bit
	LinkBit   float64               // per link bit (wiring-area proxy)
	ConstBit  float64               // per hardwired constant bit
	PortBit   float64               // per external pin bit
	StateCost float64               // controller cost per control step
	FnBit     map[vt.OpKind]float64 // per unit function per bit
	// FnSelBit is the per-bit cost of each function beyond the first in a
	// multi-function unit. An ALU shares its datapath across functions (the
	// 74181 performed 32 functions in ~19 gate-equivalents per bit, not the
	// sum of its functions), so a unit costs its most expensive function
	// plus select logic per extra function.
	FnSelBit float64
}

// Default returns the standard model used by every experiment.
func Default() Model {
	return Model{
		RegBit:    8,
		MemBit:    1.5,
		MuxWayBit: 1.5,
		LinkBit:   0.3,
		ConstBit:  0.1,
		PortBit:   2,
		StateCost: 12,
		FnBit: map[vt.OpKind]float64{
			vt.OpAdd: 12, vt.OpSub: 14, vt.OpNeg: 9,
			vt.OpAnd: 2, vt.OpOr: 2, vt.OpXor: 3, vt.OpNot: 1,
			vt.OpEql: 4, vt.OpNeq: 4, vt.OpLss: 6, vt.OpLeq: 6,
			vt.OpGtr: 6, vt.OpGeq: 6, vt.OpTest: 1,
			vt.OpShl: 5, vt.OpShr: 5,
		},
		FnSelBit: 2,
	}
}

// Breakdown is a costed design, in gate equivalents.
type Breakdown struct {
	Registers float64
	Units     float64
	Muxes     float64
	Links     float64
	Consts    float64
	Ports     float64
	Control   float64
	Datapath  float64 // sum of the above (the paper's chip-quality figure)
	Memory    float64 // reported separately: the 6502's memory is external
}

func (b Breakdown) String() string {
	return fmt.Sprintf("datapath=%.0f (regs=%.0f units=%.0f muxes=%.0f links=%.0f control=%.0f) memory=%.0f",
		b.Datapath, b.Registers, b.Units, b.Muxes, b.Links, b.Control, b.Memory)
}

// Design costs a register-transfer design.
func (m Model) Design(d *rtl.Design) Breakdown {
	var b Breakdown
	for _, r := range d.Registers {
		b.Registers += m.RegBit * float64(r.Width)
	}
	for _, u := range d.Units {
		maxFn := 0.0
		for fn := range u.Fns {
			w, ok := m.FnBit[fn]
			if !ok {
				w = 4
			}
			if w > maxFn {
				maxFn = w
			}
		}
		b.Units += (maxFn + m.FnSelBit*float64(len(u.Fns)-1)) * float64(u.Width)
	}
	for _, mx := range d.Muxes {
		b.Muxes += m.MuxWayBit * float64(mx.Inputs) * float64(mx.Width)
	}
	for _, l := range d.Links {
		b.Links += m.LinkBit * float64(l.Width)
	}
	for _, c := range d.Consts {
		b.Consts += m.ConstBit * float64(c.Width)
	}
	for _, p := range d.Ports {
		b.Ports += m.PortBit * float64(p.Width)
	}
	b.Control = m.StateCost * float64(len(d.States))
	for _, mem := range d.Memories {
		b.Memory += m.MemBit * float64(mem.Width*mem.Words)
	}
	b.Datapath = b.Registers + b.Units + b.Muxes + b.Links + b.Consts + b.Ports + b.Control
	return b
}

// Ratio returns cost(a)/cost(b) on the datapath figure.
func (m Model) Ratio(a, b *rtl.Design) float64 {
	db := m.Design(b).Datapath
	if db == 0 {
		return 0
	}
	return m.Design(a).Datapath / db
}
