// Package alloc implements the non-knowledge-based baseline allocators the
// DAA paper series compared against:
//
//   - Naive is the maximal design: one functional unit per operator, one
//     holding register per intermediate value, no sharing of anything. It
//     corresponds to a direct reading of the value trace — the design the
//     DAA's global-improvement rules exist to beat.
//   - LeftEdge is the classical algorithmic allocator: resource-constrained
//     list scheduling, greedy per-kind functional-unit sharing, and
//     left-edge interval packing of holding registers (Hashimoto–Stevens,
//     as used by the CMU-DA algorithmic tools contemporary with the DAA).
//
// Both produce complete, validated rtl.Designs through the same
// policy-free binder (internal/bind), so the comparison isolates
// allocation policy exactly as the paper's did.
package alloc

import (
	"fmt"
	"sort"

	"repro/internal/bind"
	"repro/internal/rtl"
	"repro/internal/sched"
	"repro/internal/vt"
)

// unitWidth is the width a unit needs to execute op.
func unitWidth(op *vt.Op) int {
	w := 0
	for _, a := range op.Args {
		if a.Width > w {
			w = a.Width
		}
	}
	if op.Result != nil && op.Result.Width > w {
		w = op.Result.Width
	}
	return w
}

// Naive builds the maximal design with no hardware sharing. It schedules
// under the same limits as the other allocators (defaulting to one unit
// per operation kind), so the three designs implement identical control
// steps and the comparison isolates binding policy, as the paper's did.
func Naive(trace *vt.Program, opt Options) (*rtl.Design, error) {
	scheds, err := sched.ProgramWith(opt.Scheduler, trace, defaultLimits(trace, opt.Limits))
	if err != nil {
		return nil, err
	}
	d := rtl.NewDesign(trace.Name+"-naive", trace)
	bind.Carriers(d)
	bind.ApplySchedule(d, scheds)
	for _, op := range trace.AllOps() {
		if op.Kind.IsCompute() {
			d.OpUnit[op] = d.AddUnit(fmt.Sprintf("u%d.%s", op.ID, op.Kind), unitWidth(op), op.Kind)
		}
	}
	for i, v := range bind.CrossingValues(d) {
		d.ValueReg[v] = d.AddRegister(fmt.Sprintf("t%d", i), v.Width)
	}
	if err := bind.Wire(d); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("alloc: naive design invalid: %v", err)
	}
	return d, nil
}

// Options configures the baseline allocators.
type Options struct {
	// Limits constrains the list scheduler. When UnitsPerKind is nil, every
	// compute kind present in the trace is capped at one unit, the
	// minimum-hardware operating point of the classical allocators and the
	// DAA's default.
	Limits sched.Limits
	// Scheduler names the scheduling policy (sched.SchedList, SchedASAP,
	// SchedALAP); empty means list. ASAP and ALAP ignore Limits, so their
	// designs may demand more concurrent hardware than the list schedule's.
	Scheduler string
}

// defaultLimits fills in the one-unit-per-kind default.
func defaultLimits(trace *vt.Program, lim sched.Limits) sched.Limits {
	if lim.UnitsPerKind == nil {
		lim.UnitsPerKind = map[vt.OpKind]int{}
		for _, op := range trace.AllOps() {
			if op.Kind.IsCompute() {
				lim.UnitsPerKind[op.Kind] = 1
			}
		}
	}
	return lim
}

// LeftEdge builds a design with greedy functional-unit sharing and
// left-edge holding-register packing.
func LeftEdge(trace *vt.Program, opt Options) (*rtl.Design, error) {
	lim := defaultLimits(trace, opt.Limits)
	scheds, err := sched.ProgramWith(opt.Scheduler, trace, lim)
	if err != nil {
		return nil, err
	}
	d := rtl.NewDesign(trace.Name+"-leftedge", trace)
	bind.Carriers(d)
	bind.ApplySchedule(d, scheds)
	shareUnits(d)
	packRegisters(d)
	if err := bind.Wire(d); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("alloc: left-edge design invalid: %v", err)
	}
	return d, nil
}

// shareUnits binds compute operators to per-kind unit pools: within a
// control step each concurrent operator of a kind gets its own unit; across
// steps units are reused. Unit widths grow to the widest operator bound.
func shareUnits(d *rtl.Design) {
	pools := map[vt.OpKind][]*rtl.Unit{}
	// Deterministic order: by state ID then op sequence.
	ops := computeOps(d)
	lastState := map[*rtl.Unit]*rtl.State{}
	for _, op := range ops {
		s := d.OpState[op]
		var unit *rtl.Unit
		for _, u := range pools[op.Kind] {
			if lastState[u] != s {
				unit = u
				break
			}
		}
		if unit == nil {
			unit = d.AddUnit(fmt.Sprintf("%s%d", op.Kind, len(pools[op.Kind])), unitWidth(op), op.Kind)
			pools[op.Kind] = append(pools[op.Kind], unit)
		}
		if w := unitWidth(op); w > unit.Width {
			unit.Width = w
		}
		lastState[unit] = s
		d.OpUnit[op] = unit
	}
}

// computeOps returns the trace's compute operators ordered by control step
// then program order. Operators in different bodies never execute
// concurrently (control is a single sequential machine), so the only
// conflict to avoid is two operators on one unit in one step.
func computeOps(d *rtl.Design) []*vt.Op {
	var ops []*vt.Op
	for _, op := range d.Trace.AllOps() {
		if op.Kind.IsCompute() {
			ops = append(ops, op)
		}
	}
	sort.Slice(ops, func(i, j int) bool {
		si, sj := d.OpState[ops[i]], d.OpState[ops[j]]
		if si.ID != sj.ID {
			return si.ID < sj.ID
		}
		return ops[i].Seq < ops[j].Seq
	})
	return ops
}

// packRegisters allocates holding registers by the left-edge algorithm,
// packing value lifetimes within each body into shared register tracks.
// Parking happens at end-of-step, so a track is free for a new value whose
// start is at or after the previous occupant's last read.
func packRegisters(d *rtl.Design) {
	type track struct {
		body  string
		width int
		hi    int
		vals  []*vt.Value
	}
	byBody := map[string][]*vt.Value{}
	for _, v := range bind.CrossingValues(d) {
		body := v.Def.Body.Name
		byBody[body] = append(byBody[body], v)
	}
	bodies := make([]string, 0, len(byBody))
	for b := range byBody {
		bodies = append(bodies, b)
	}
	sort.Strings(bodies)
	var tracks []*track
	assign := map[*vt.Value]*track{}
	for _, body := range bodies {
		vals := byBody[body]
		sort.Slice(vals, func(i, j int) bool {
			li, _ := bind.Lifetime(d, vals[i])
			lj, _ := bind.Lifetime(d, vals[j])
			if li != lj {
				return li < lj
			}
			return vals[i].ID < vals[j].ID
		})
		var local []*track
		for _, v := range vals {
			lo, hi := bind.Lifetime(d, v)
			var tr *track
			for _, cand := range local {
				if cand.hi <= lo {
					tr = cand
					break
				}
			}
			if tr == nil {
				tr = &track{body: body}
				local = append(local, tr)
				tracks = append(tracks, tr)
			}
			tr.hi = hi
			if v.Width > tr.width {
				tr.width = v.Width
			}
			tr.vals = append(tr.vals, v)
			assign[v] = tr
		}
	}
	regs := map[*track]*rtl.Register{}
	for i, tr := range tracks {
		regs[tr] = d.AddRegister(fmt.Sprintf("t%d", i), tr.width)
	}
	for v, tr := range assign {
		d.ValueReg[v] = regs[tr]
	}
}
