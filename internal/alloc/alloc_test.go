package alloc

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/isps"
	"repro/internal/vt"
)

func trace(t *testing.T, src string) *vt.Program {
	t.Helper()
	prog, err := isps.Parse("t", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	tr, err := vt.Build(prog)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return tr
}

func wrap(decls, body string) string {
	return fmt.Sprintf("processor T {\n%s\nmain m {\n%s\n}\n}", decls, body)
}

const gcdSrc = `
processor GCD {
    reg X<15:0>
    reg Y<15:0>
    port in  XIN<15:0>
    port in  YIN<15:0>
    port out R<15:0>
    main run {
        X := XIN
        Y := YIN
        while X neq Y {
            if X gtr Y { X := X - Y } else { Y := Y - X }
        }
        R := X
    }
}`

func TestNaiveValidatesOnGCD(t *testing.T) {
	tr := trace(t, gcdSrc)
	d, err := Naive(tr, Options{})
	if err != nil {
		t.Fatalf("Naive: %v", err)
	}
	c := d.Counts()
	// Every compute op gets its own unit.
	computes := 0
	for _, op := range tr.AllOps() {
		if op.Kind.IsCompute() {
			computes++
		}
	}
	if c.Units != computes {
		t.Errorf("units %d, want %d (one per compute op)", c.Units, computes)
	}
	if c.States == 0 || c.Links == 0 {
		t.Errorf("implausible counts: %v", c)
	}
}

func TestLeftEdgeValidatesOnGCD(t *testing.T) {
	tr := trace(t, gcdSrc)
	d, err := LeftEdge(tr, Options{})
	if err != nil {
		t.Fatalf("LeftEdge: %v", err)
	}
	// Default limits cap one unit per kind: sub appears twice (two branch
	// arms) but shares one unit.
	subUnits := 0
	for _, u := range d.Units {
		if u.Has(vt.OpSub) {
			subUnits++
		}
	}
	if subUnits != 1 {
		t.Errorf("sub units %d, want 1 (shared)", subUnits)
	}
}

func TestLeftEdgeNeverWorseThanNaive(t *testing.T) {
	tr := trace(t, gcdSrc)
	naive, err := Naive(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	le, err := LeftEdge(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	nc, lc := naive.Counts(), le.Counts()
	if lc.Units > nc.Units {
		t.Errorf("left-edge units %d > naive %d", lc.Units, nc.Units)
	}
	if lc.Registers > nc.Registers {
		t.Errorf("left-edge registers %d > naive %d", lc.Registers, nc.Registers)
	}
}

func TestNaiveMemoryDesign(t *testing.T) {
	tr := trace(t, wrap("mem M[0:15]<7:0> reg A<7:0> reg P<3:0>",
		"A := M[P]\nM[P] := A + 1\nP := P + 1"))
	d, err := Naive(tr, Options{})
	if err != nil {
		t.Fatalf("Naive: %v", err)
	}
	if len(d.Memories) != 1 {
		t.Fatalf("memories %d, want 1", len(d.Memories))
	}
}

func TestSharedUnitAcrossSteps(t *testing.T) {
	// Two adds forced into different steps (dependence chain) share a unit.
	tr := trace(t, wrap("reg A<7:0> reg B<7:0>", "A := A + 1\nB := A + 2"))
	d, err := LeftEdge(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	adders := 0
	for _, u := range d.Units {
		if u.Has(vt.OpAdd) {
			adders++
		}
	}
	if adders != 1 {
		t.Errorf("adders %d, want 1", adders)
	}
}

func TestCrossingValueGetsRegister(t *testing.T) {
	// A+B computed, then a write to A (step boundary), then the old sum is
	// reused: the sum must be parked in a holding register.
	tr := trace(t, wrap("reg A<7:0> reg B<7:0> reg C<7:0> reg D<7:0>",
		"C := A + B\nD := C + 1"))
	d, err := Naive(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Design validity already implies correct parking; check at least the
	// carrier registers exist.
	if len(d.Registers) < 4 {
		t.Errorf("registers %d, want >= 4 carriers", len(d.Registers))
	}
}

func TestMuxInsertedForSharedUnitInput(t *testing.T) {
	// One adder fed from different registers in different steps needs
	// muxes on its operand ports.
	tr := trace(t, wrap("reg A<7:0> reg B<7:0> reg C<7:0>",
		"A := A + 1\nB := B + 1\nC := C + 1"))
	d, err := LeftEdge(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Muxes) == 0 {
		t.Error("expected muxes on the shared adder's operand port")
	}
}

func TestNaiveAvoidsMuxesWhenNoSharing(t *testing.T) {
	tr := trace(t, wrap("reg A<7:0> reg B<7:0>", "B := A + 1"))
	d, err := Naive(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Muxes) != 0 {
		t.Errorf("muxes %d, want 0 for a single transfer", len(d.Muxes))
	}
}

func TestPortsWired(t *testing.T) {
	tr := trace(t, wrap("port in X<7:0> port out Y<7:0> reg A<7:0>",
		"A := X\nY := A + 1"))
	d, err := Naive(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Ports) != 2 {
		t.Fatalf("ports %d, want 2", len(d.Ports))
	}
}

func TestDecodeHeavyDesign(t *testing.T) {
	tr := trace(t, wrap("reg A<7:0> reg B<7:0> reg OP<2:0>", `
        decode OP {
            0: A := A + B
            1: A := A - B
            2: A := A and B
            3: A := A or B
            4: A := A xor B
            otherwise: nop
        }`))
	for _, build := range []func() error{
		func() error { _, err := Naive(tr, Options{}); return err },
		func() error { _, err := LeftEdge(tr, Options{}); return err },
	} {
		if err := build(); err != nil {
			t.Fatal(err)
		}
	}
	le, _ := LeftEdge(tr, Options{})
	// Mutually exclusive branches: one unit per kind suffices.
	if len(le.Units) != 5 {
		t.Errorf("units %d, want 5 (one per kind)", len(le.Units))
	}
}

func TestProcedureCallDesign(t *testing.T) {
	tr := trace(t, `
processor P {
    reg A<7:0>
    reg B<7:0>
    proc bump { A := A + 1 }
    main m { call bump B := B + 1 call bump }
}`)
	d, err := LeftEdge(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	adders := 0
	for _, u := range d.Units {
		if u.Has(vt.OpAdd) {
			adders++
		}
	}
	if adders != 1 {
		t.Errorf("adders %d, want 1 (callee body shared, unit shared)", adders)
	}
}

func TestPartialWriteDesign(t *testing.T) {
	tr := trace(t, wrap("reg P<7:0> reg A<7:0>",
		"P<0:0> := A eql 0\nP<1:1> := A gtr 5"))
	if _, err := Naive(tr, Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestConcatAndSliceDesign(t *testing.T) {
	tr := trace(t, wrap("reg A<3:0> reg B<3:0> reg W<7:0>",
		"W := A @ B\nA := W<7:4>"))
	d, err := Naive(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The concat write needs links from both A and B to W.
	if len(d.Links) < 2 {
		t.Errorf("links %d, want >= 2 for the concat", len(d.Links))
	}
}

// Property: both allocators produce valid designs on randomly generated
// programs with branches and loops, and left-edge never uses more units or
// registers than naive.
func TestAllocatorsProperty(t *testing.T) {
	f := func(seed uint32, n uint8) bool {
		stmts := int(n%8) + 1
		s := seed
		body := ""
		ops := []string{"+", "-", "and", "or", "xor"}
		for i := 0; i < stmts; i++ {
			s = s*1664525 + 1013904223
			dst := int(s>>4) % 4
			a := int(s>>10) % 4
			b := int(s>>16) % 4
			op := ops[int(s>>22)%len(ops)]
			stmt := fmt.Sprintf("R%d := R%d %s R%d", dst, a, op, b)
			switch int(s) % 4 {
			case 1:
				stmt = fmt.Sprintf("if R%d eql 0 { %s }", a, stmt)
			case 2:
				stmt = fmt.Sprintf("decode R%d<1:0> { 0: %s otherwise: nop }", b, stmt)
			case 3:
				stmt = fmt.Sprintf("repeat 2 { %s }", stmt)
			}
			body += stmt + "\n"
		}
		src := fmt.Sprintf("processor T { reg R0<7:0> reg R1<7:0> reg R2<7:0> reg R3<7:0> main m { %s } }", body)
		prog, err := isps.Parse("t", src)
		if err != nil {
			return false
		}
		tr, err := vt.Build(prog)
		if err != nil {
			return false
		}
		naive, err := Naive(tr, Options{})
		if err != nil {
			return false
		}
		le, err := LeftEdge(tr, Options{})
		if err != nil {
			return false
		}
		nc, lc := naive.Counts(), le.Counts()
		return lc.Units <= nc.Units && lc.Registers <= nc.Registers
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
