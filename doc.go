// Package repro reproduces "The VLSI Design Automation Assistant:
// Prototype System" (Kowalski & Thomas, DAC 1983) as a Go library: an
// ISPS front end (internal/isps), the Value Trace (internal/vt), an
// OPS5-style production engine (internal/prod), the DAA rule base
// (internal/core), baseline allocators (internal/alloc), and the
// experiment harness (internal/exp). See README.md, DESIGN.md, and
// EXPERIMENTS.md; bench_test.go regenerates every table and figure.
package repro
