package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/flow"
)

func TestDumpBench(t *testing.T) {
	if err := run(io.Discard, "", "gcd", false, false); err != nil {
		t.Fatal(err)
	}
	if err := run(io.Discard, "", "gcd", true, false); err != nil {
		t.Fatal(err)
	}
}

func TestDumpFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.isps")
	if err := os.WriteFile(path, []byte("processor X { reg A main m { A := 1 } }"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(io.Discard, path, "", false, false); err != nil {
		t.Fatal(err)
	}
}

// TestDumpProvenanceDot checks the annotated DOT mode: operator nodes
// carry the journaled firings that consumed them.
func TestDumpProvenanceDot(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "", "gcd", true, true); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"digraph", "control/", "place-op"} {
		if !strings.Contains(out, want) {
			t.Errorf("provenance DOT missing %q:\n%s", want, out)
		}
	}
	if err := run(io.Discard, "", "gcd", false, true); flow.ExitCode(err) != flow.ExitUsage {
		t.Errorf("-provenance without -dot: exit %d, want usage", flow.ExitCode(err))
	}
}

func TestDumpErrors(t *testing.T) {
	if err := run(io.Discard, "", "", false, false); flow.ExitCode(err) != flow.ExitUsage {
		t.Errorf("no input: exit %d, want usage", flow.ExitCode(err))
	}
	if err := run(io.Discard, "a", "b", false, false); flow.ExitCode(err) != flow.ExitUsage {
		t.Errorf("both inputs: exit %d, want usage", flow.ExitCode(err))
	}
	if err := run(io.Discard, "", "nope", false, false); flow.ExitCode(err) != flow.ExitUsage {
		t.Errorf("unknown benchmark: exit %d, want usage", flow.ExitCode(err))
	}
	if err := run(io.Discard, "/no/such.isps", "", false, false); flow.ExitCode(err) != flow.ExitDiagnostic {
		t.Errorf("unreadable file: exit %d, want diagnostic", flow.ExitCode(err))
	}
}

// TestDumpBadSource checks parse failures surface as positioned caret
// diagnostics with exit code 2.
func TestDumpBadSource(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.isps")
	if err := os.WriteFile(path, []byte("processor X {\n    reg A<7:0\n}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run(io.Discard, path, "", false, false)
	if flow.ExitCode(err) != flow.ExitDiagnostic {
		t.Fatalf("exit %d (%v), want diagnostic", flow.ExitCode(err), err)
	}
	var sb strings.Builder
	flow.WriteError(&sb, "vtdump", err)
	if !strings.Contains(sb.String(), "bad.isps:") || !strings.Contains(sb.String(), "^") {
		t.Errorf("caret diagnostic missing:\n%s", sb.String())
	}
}
