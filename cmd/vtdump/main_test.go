package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestDumpBench(t *testing.T) {
	if err := run("", "gcd", false); err != nil {
		t.Fatal(err)
	}
	if err := run("", "gcd", true); err != nil {
		t.Fatal(err)
	}
}

func TestDumpFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.isps")
	if err := os.WriteFile(path, []byte("processor X { reg A main m { A := 1 } }"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, "", false); err != nil {
		t.Fatal(err)
	}
}

func TestDumpErrors(t *testing.T) {
	if err := run("", "", false); err == nil {
		t.Error("expected error without input")
	}
	if err := run("a", "b", false); err == nil {
		t.Error("expected error with both inputs")
	}
	if err := run("", "nope", false); err == nil {
		t.Error("expected error for unknown benchmark")
	}
}
