// Command vtdump prints the Value Trace of an ISPS description, either as
// indented text (default) or as a Graphviz digraph (-dot). The trace is
// built through the staged pipeline's front end (internal/flow), so parse
// and sema problems are reported with file:line:col positions and a caret
// (exit 2); usage mistakes exit 1.
//
// With -provenance the DOT output is annotated from a journaled synthesis
// of the same description: each operator node lists the rule firings whose
// journaled effects consumed it (phase/seq rule effect), connecting the
// behavioral trace to the decisions that turned it into structure.
//
// Usage:
//
//	vtdump -bench gcd
//	vtdump -in design.isps -dot > trace.dot
//	vtdump -bench gcd -dot -provenance > trace.dot
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/vt"
)

func main() {
	var (
		inFile     = flag.String("in", "", "ISPS source file")
		benchName  = flag.String("bench", "", "embedded benchmark (see daa -list)")
		dot        = flag.Bool("dot", false, "emit Graphviz instead of text")
		provenance = flag.Bool("provenance", false, "annotate -dot nodes with the rule firings that consumed each operator")
	)
	flag.Parse()
	if err := run(os.Stdout, *inFile, *benchName, *dot, *provenance); err != nil {
		flow.WriteError(os.Stderr, "vtdump", err)
		os.Exit(flow.ExitCode(err))
	}
}

func run(w io.Writer, inFile, benchName string, dot, provenance bool) error {
	var in flow.Input
	var err error
	switch {
	case inFile != "" && benchName != "":
		return flow.Usagef("use either -in or -bench, not both")
	case benchName != "":
		in, err = bench.Input(benchName)
		if err != nil {
			return flow.Usagef("%v", err)
		}
	case inFile != "":
		in, err = flow.FileInput(inFile)
		if err != nil {
			return err
		}
	default:
		return flow.Usagef("pass -in file.isps or -bench name")
	}
	if provenance && !dot {
		return flow.Usagef("-provenance annotates the graph output; pass -dot as well")
	}
	ctx := context.Background()
	tr, err := flow.FrontEnd(ctx, in)
	if err != nil {
		return err
	}
	if !dot {
		return tr.Dump(w)
	}
	if !provenance {
		return tr.WriteDot(w)
	}
	// Journaled synthesis of the same input; operator IDs are deterministic
	// across front-end runs (the replay decoder relies on this), so the
	// journal's op refs resolve against the pristine trace dumped here.
	res, err := flow.Compile(ctx, in, flow.Options{Core: core.Options{Journal: true}})
	if err != nil {
		return err
	}
	hist := res.Journal().OpHistory()
	return tr.WriteDotAnnotated(w, func(op *vt.Op) []string {
		notes := hist[op.ID]
		lines := make([]string, 0, len(notes))
		for _, n := range notes {
			lines = append(lines, fmt.Sprintf("%s/%d %s: %s", n.Phase, n.Seq, n.Rule, n.Effect))
		}
		return lines
	})
}
