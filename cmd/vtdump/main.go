// Command vtdump prints the Value Trace of an ISPS description, either as
// indented text (default) or as a Graphviz digraph (-dot). The trace is
// built through the staged pipeline's front end (internal/flow), so parse
// and sema problems are reported with file:line:col positions and a caret
// (exit 2); usage mistakes exit 1.
//
// Usage:
//
//	vtdump -bench gcd
//	vtdump -in design.isps -dot > trace.dot
package main

import (
	"context"
	"flag"
	"io"
	"os"

	"repro/internal/bench"
	"repro/internal/flow"
)

func main() {
	var (
		inFile    = flag.String("in", "", "ISPS source file")
		benchName = flag.String("bench", "", "embedded benchmark (see daa -list)")
		dot       = flag.Bool("dot", false, "emit Graphviz instead of text")
	)
	flag.Parse()
	if err := run(os.Stdout, *inFile, *benchName, *dot); err != nil {
		flow.WriteError(os.Stderr, "vtdump", err)
		os.Exit(flow.ExitCode(err))
	}
}

func run(w io.Writer, inFile, benchName string, dot bool) error {
	var in flow.Input
	var err error
	switch {
	case inFile != "" && benchName != "":
		return flow.Usagef("use either -in or -bench, not both")
	case benchName != "":
		in, err = bench.Input(benchName)
		if err != nil {
			return flow.Usagef("%v", err)
		}
	case inFile != "":
		in, err = flow.FileInput(inFile)
		if err != nil {
			return err
		}
	default:
		return flow.Usagef("pass -in file.isps or -bench name")
	}
	tr, err := flow.Front(context.Background(), in)
	if err != nil {
		return err
	}
	if dot {
		return tr.WriteDot(w)
	}
	return tr.Dump(w)
}
