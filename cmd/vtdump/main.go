// Command vtdump prints the Value Trace of an ISPS description, either as
// indented text (default) or as a Graphviz digraph (-dot).
//
// Usage:
//
//	vtdump -bench gcd
//	vtdump -in design.isps -dot > trace.dot
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/isps"
	"repro/internal/vt"
)

func main() {
	var (
		inFile    = flag.String("in", "", "ISPS source file")
		benchName = flag.String("bench", "", "embedded benchmark (see daa -list)")
		dot       = flag.Bool("dot", false, "emit Graphviz instead of text")
	)
	flag.Parse()
	if err := run(*inFile, *benchName, *dot); err != nil {
		fmt.Fprintln(os.Stderr, "vtdump:", err)
		os.Exit(1)
	}
}

func run(inFile, benchName string, dot bool) error {
	var tr *vt.Program
	var err error
	switch {
	case inFile != "" && benchName != "":
		return fmt.Errorf("use either -in or -bench, not both")
	case benchName != "":
		tr, err = bench.Load(benchName)
	case inFile != "":
		var src []byte
		src, err = os.ReadFile(inFile)
		if err != nil {
			return err
		}
		var prog *isps.Program
		prog, err = isps.Parse(inFile, string(src))
		if err != nil {
			return err
		}
		tr, err = vt.Build(prog)
	default:
		return fmt.Errorf("pass -in file.isps or -bench name")
	}
	if err != nil {
		return err
	}
	if dot {
		return tr.WriteDot(os.Stdout)
	}
	return tr.Dump(os.Stdout)
}
