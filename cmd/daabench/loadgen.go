package main

// Load generation against a daad daemon (cmd/daad): replays the embedded
// benchmark suite concurrently over POST /v1/synthesize and reports
// throughput and latency percentiles — the serving-path numbers BENCH
// tracking records next to the in-process synthesis figures.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/flow"
	"repro/internal/serve"
)

// loadOptions configures one loadgen run.
type loadOptions struct {
	addr        string // daemon base URL (required)
	concurrency int    // concurrent clients
	requests    int    // total requests (cycled over the suite)
	noCache     bool   // ask the daemon to bypass its design cache
	cluster     bool   // target is a coordinator: report per-worker shard heat
	explore     bool   // mix /v1/explore sweeps into the synthesize replay
	asJSON      bool
}

// exploreStride makes every Nth loadgen request an /v1/explore sweep when
// -explore is set; the rest stay synthesize replays. The sweep grid is
// small and fixed (exploreGrid) so one sweep costs a handful of synthesis
// points and the mix exercises the explore path without dwarfing the
// synthesize traffic.
const exploreStride = 4

// exploreGrid is the fixed 4-point sweep loadgen posts: two allocators
// crossed with cleanup on/off.
func exploreGrid() map[string]serve.GridAxis {
	return map[string]serve.GridAxis{
		"allocator": {"daa", "leftedge"},
		"cleanup":   {"true", "false"},
	}
}

// LoadReport is the machine-readable loadgen result (daabench -loadgen -json).
type LoadReport struct {
	Addr        string   `json:"addr"`
	Suite       []string `json:"suite"`
	Requests    int      `json:"requests"`
	Concurrency int      `json:"concurrency"`
	Errors      int      `json:"errors"`
	CacheHits   int64    `json:"cacheHits"`
	// Explore counts the requests sent to /v1/explore instead of
	// /v1/synthesize (every exploreStride-th request with -explore).
	Explore     int64          `json:"exploreRequests"`
	StatusCount map[string]int `json:"statusCounts"`
	WallMS      float64        `json:"wallMs"`
	Throughput  float64        `json:"throughputRPS"`
	Latency     LatencyReport  `json:"latencyMs"`
	// Workers is the client-observed per-worker split (X-DAAD-Worker /
	// X-DAAD-Cache response headers), present with -cluster.
	Workers map[string]WorkerLoad `json:"workers,omitempty"`
	// Cluster is the coordinator's own /v1/cluster status after the run,
	// present with -cluster.
	Cluster *cluster.StatusResponse `json:"cluster,omitempty"`
}

// WorkerLoad is the load-generator's view of one shard.
type WorkerLoad struct {
	Requests  int64   `json:"requests"`
	CacheHits int64   `json:"cacheHits"`
	HitRate   float64 `json:"hitRate"`
}

// LatencyReport summarizes per-request latency in milliseconds.
type LatencyReport struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

// runLoadgen fires opts.requests synthesize calls at the daemon from
// opts.concurrency workers and renders the report.
func runLoadgen(w io.Writer, opts loadOptions) error {
	if opts.addr == "" {
		return flow.Usagef("-loadgen needs -addr http://host:port of a running daad")
	}
	base := strings.TrimRight(opts.addr, "/")
	if err := waitHealthy(base, 10*time.Second); err != nil {
		return err
	}
	names := bench.Names()
	bodies := make([][]byte, len(names))
	exploreBodies := make([][]byte, len(names))
	for i, n := range names {
		src, err := bench.Source(n)
		if err != nil {
			return err
		}
		body, err := json.Marshal(serve.SynthesizeRequest{
			Name:    n + ".isps",
			Source:  src,
			NoCache: opts.noCache,
		})
		if err != nil {
			return err
		}
		bodies[i] = body
		if opts.explore {
			eb, err := json.Marshal(serve.ExploreRequest{
				Name:    n + ".isps",
				Source:  src,
				Grid:    exploreGrid(),
				NoCache: opts.noCache,
			})
			if err != nil {
				return err
			}
			exploreBodies[i] = eb
		}
	}

	var (
		next      atomic.Int64
		cacheHits atomic.Int64
		explores  atomic.Int64
		mu        sync.Mutex
		latencies []time.Duration
		statuses  = map[string]int{}
		workers   = map[string]WorkerLoad{}
		errs      int
	)
	client := &http.Client{Timeout: 5 * time.Minute}
	synthURL := base + "/v1/synthesize"
	exploreURL := base + "/v1/explore"
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < opts.concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(opts.requests) {
					return
				}
				url, body := synthURL, bodies[i%int64(len(bodies))]
				if opts.explore && i%exploreStride == 0 {
					url, body = exploreURL, exploreBodies[i%int64(len(bodies))]
					explores.Add(1)
				}
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(body))
				lat := time.Since(t0)
				mu.Lock()
				latencies = append(latencies, lat)
				if err != nil {
					errs++
					statuses["error"]++
					mu.Unlock()
					continue
				}
				hit := resp.Header.Get("X-DAAD-Cache") == "hit"
				statuses[resp.Status]++
				if resp.StatusCode != http.StatusOK {
					errs++
				}
				if wid := resp.Header.Get("X-DAAD-Worker"); wid != "" {
					wl := workers[wid]
					wl.Requests++
					if hit {
						wl.CacheHits++
					}
					workers[wid] = wl
				}
				mu.Unlock()
				if hit {
					cacheHits.Add(1)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	rep := LoadReport{
		Addr:        base,
		Suite:       names,
		Requests:    opts.requests,
		Concurrency: opts.concurrency,
		Errors:      errs,
		CacheHits:   cacheHits.Load(),
		Explore:     explores.Load(),
		StatusCount: statuses,
		WallMS:      float64(wall.Microseconds()) / 1000,
		Throughput:  float64(opts.requests) / wall.Seconds(),
		Latency:     summarize(latencies),
	}
	if opts.cluster {
		for id, wl := range workers {
			if wl.Requests > 0 {
				wl.HitRate = float64(wl.CacheHits) / float64(wl.Requests)
			}
			workers[id] = wl
		}
		rep.Workers = workers
		if status, err := fetchClusterStatus(base); err == nil {
			rep.Cluster = status
		} else {
			fmt.Fprintf(w, "loadgen: /v1/cluster scrape failed: %v\n", err)
		}
	}
	if opts.asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Fprintf(w, "loadgen: %d requests x %d clients against %s (suite of %d)\n",
		rep.Requests, rep.Concurrency, rep.Addr, len(names))
	fmt.Fprintf(w, "  wall %.1f ms, %.1f req/s, %d errors, %d cache hits\n",
		rep.WallMS, rep.Throughput, rep.Errors, rep.CacheHits)
	if opts.explore {
		points := 1
		for _, ax := range exploreGrid() {
			points *= len(ax)
		}
		fmt.Fprintf(w, "  explore: %d sweeps (every %dth request, %d-point grid)\n",
			rep.Explore, exploreStride, points)
	}
	fmt.Fprintf(w, "  latency ms: mean %.2f  p50 %.2f  p90 %.2f  p99 %.2f  max %.2f\n",
		rep.Latency.Mean, rep.Latency.P50, rep.Latency.P90, rep.Latency.P99, rep.Latency.Max)
	if opts.cluster {
		writeClusterSplit(w, rep)
	}
	if rep.Errors > 0 {
		return fmt.Errorf("loadgen: %d of %d requests failed (%v)", rep.Errors, rep.Requests, statuses)
	}
	return nil
}

// writeClusterSplit renders the per-worker shard heat: the load
// generator's own observation (X-DAAD-Worker / X-DAAD-Cache headers) and
// the coordinator's failover/transition counters.
func writeClusterSplit(w io.Writer, rep LoadReport) {
	ids := make([]string, 0, len(rep.Workers))
	for id := range rep.Workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		wl := rep.Workers[id]
		fmt.Fprintf(w, "  worker %-8s %5d requests  %5d cache hits  hit rate %.2f\n",
			id, wl.Requests, wl.CacheHits, wl.HitRate)
	}
	if rep.Cluster != nil {
		fmt.Fprintf(w, "  ring: %d members, %d failovers, %d transitions\n",
			len(rep.Cluster.Ring.Members), rep.Cluster.Failovers, rep.Cluster.Transitions)
	}
}

// fetchClusterStatus scrapes the coordinator's /v1/cluster after a run.
func fetchClusterStatus(base string) (*cluster.StatusResponse, error) {
	resp, err := http.Get(base + "/v1/cluster")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("HTTP %d (is -addr a coordinator?)", resp.StatusCode)
	}
	var out cluster.StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// waitHealthy polls the readiness probe until the daemon (or coordinator)
// answers ready, so loadgen starts only once a freshly booted target is
// warm and routable (the CI smoke path).
func waitHealthy(base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/v1/healthz?ready=1")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("loadgen: daemon at %s not healthy after %v: %v", base, timeout, err)
			}
			return fmt.Errorf("loadgen: daemon at %s not healthy after %v", base, timeout)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// summarize computes the latency digest.
func summarize(ds []time.Duration) LatencyReport {
	if len(ds) == 0 {
		return LatencyReport{}
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	at := func(q float64) float64 {
		i := int(q * float64(len(ds)-1))
		return float64(ds[i].Microseconds()) / 1000
	}
	return LatencyReport{
		Mean: float64((sum / time.Duration(len(ds))).Microseconds()) / 1000,
		P50:  at(0.50),
		P90:  at(0.90),
		P99:  at(0.99),
		Max:  float64(ds[len(ds)-1].Microseconds()) / 1000,
	}
}
