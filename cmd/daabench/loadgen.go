package main

// Load generation against a daad daemon (cmd/daad): replays the embedded
// benchmark suite concurrently over POST /v1/synthesize and reports
// throughput and latency percentiles — the serving-path numbers BENCH
// tracking records next to the in-process synthesis figures.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/flow"
	"repro/internal/serve"
)

// loadOptions configures one loadgen run.
type loadOptions struct {
	addr        string // daemon base URL (required)
	concurrency int    // concurrent clients
	requests    int    // total requests (cycled over the suite)
	noCache     bool   // ask the daemon to bypass its design cache
	asJSON      bool
}

// LoadReport is the machine-readable loadgen result (daabench -loadgen -json).
type LoadReport struct {
	Addr        string         `json:"addr"`
	Suite       []string       `json:"suite"`
	Requests    int            `json:"requests"`
	Concurrency int            `json:"concurrency"`
	Errors      int            `json:"errors"`
	CacheHits   int64          `json:"cacheHits"`
	StatusCount map[string]int `json:"statusCounts"`
	WallMS      float64        `json:"wallMs"`
	Throughput  float64        `json:"throughputRPS"`
	Latency     LatencyReport  `json:"latencyMs"`
}

// LatencyReport summarizes per-request latency in milliseconds.
type LatencyReport struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

// runLoadgen fires opts.requests synthesize calls at the daemon from
// opts.concurrency workers and renders the report.
func runLoadgen(w io.Writer, opts loadOptions) error {
	if opts.addr == "" {
		return flow.Usagef("-loadgen needs -addr http://host:port of a running daad")
	}
	base := strings.TrimRight(opts.addr, "/")
	if err := waitHealthy(base, 10*time.Second); err != nil {
		return err
	}
	names := bench.Names()
	bodies := make([][]byte, len(names))
	for i, n := range names {
		src, err := bench.Source(n)
		if err != nil {
			return err
		}
		body, err := json.Marshal(serve.SynthesizeRequest{
			Name:    n + ".isps",
			Source:  src,
			NoCache: opts.noCache,
		})
		if err != nil {
			return err
		}
		bodies[i] = body
	}

	var (
		next      atomic.Int64
		cacheHits atomic.Int64
		mu        sync.Mutex
		latencies []time.Duration
		statuses  = map[string]int{}
		errs      int
	)
	client := &http.Client{Timeout: 5 * time.Minute}
	url := base + "/v1/synthesize"
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < opts.concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(opts.requests) {
					return
				}
				body := bodies[i%int64(len(bodies))]
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(body))
				lat := time.Since(t0)
				mu.Lock()
				latencies = append(latencies, lat)
				if err != nil {
					errs++
					statuses["error"]++
					mu.Unlock()
					continue
				}
				statuses[resp.Status]++
				if resp.StatusCode != http.StatusOK {
					errs++
				}
				mu.Unlock()
				if resp.Header.Get("X-DAAD-Cache") == "hit" {
					cacheHits.Add(1)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	rep := LoadReport{
		Addr:        base,
		Suite:       names,
		Requests:    opts.requests,
		Concurrency: opts.concurrency,
		Errors:      errs,
		CacheHits:   cacheHits.Load(),
		StatusCount: statuses,
		WallMS:      float64(wall.Microseconds()) / 1000,
		Throughput:  float64(opts.requests) / wall.Seconds(),
		Latency:     summarize(latencies),
	}
	if opts.asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Fprintf(w, "loadgen: %d requests x %d clients against %s (suite of %d)\n",
		rep.Requests, rep.Concurrency, rep.Addr, len(names))
	fmt.Fprintf(w, "  wall %.1f ms, %.1f req/s, %d errors, %d cache hits\n",
		rep.WallMS, rep.Throughput, rep.Errors, rep.CacheHits)
	fmt.Fprintf(w, "  latency ms: mean %.2f  p50 %.2f  p90 %.2f  p99 %.2f  max %.2f\n",
		rep.Latency.Mean, rep.Latency.P50, rep.Latency.P90, rep.Latency.P99, rep.Latency.Max)
	if rep.Errors > 0 {
		return fmt.Errorf("loadgen: %d of %d requests failed (%v)", rep.Errors, rep.Requests, statuses)
	}
	return nil
}

// waitHealthy polls /v1/healthz until the daemon answers, so loadgen can
// start as soon as a freshly booted daad is up (the CI smoke path).
func waitHealthy(base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/v1/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("loadgen: daemon at %s not healthy after %v: %v", base, timeout, err)
			}
			return fmt.Errorf("loadgen: daemon at %s not healthy after %v", base, timeout)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// summarize computes the latency digest.
func summarize(ds []time.Duration) LatencyReport {
	if len(ds) == 0 {
		return LatencyReport{}
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	at := func(q float64) float64 {
		i := int(q * float64(len(ds)-1))
		return float64(ds[i].Microseconds()) / 1000
	}
	return LatencyReport{
		Mean: float64((sum / time.Duration(len(ds))).Microseconds()) / 1000,
		P50:  at(0.50),
		P90:  at(0.90),
		P99:  at(0.99),
		Max:  float64(ds[len(ds)-1].Microseconds()) / 1000,
	}
}
