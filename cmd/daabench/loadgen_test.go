package main

// Loadgen tests against real serving stacks behind httptest: a single
// daemon, and a coordinator over two workers with the -cluster report.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/serve"
)

func TestLoadgenSingleDaemon(t *testing.T) {
	ts := httptest.NewServer(serve.New(serve.Config{}).Handler())
	defer ts.Close()

	var sb strings.Builder
	err := runLoadgen(&sb, loadOptions{addr: ts.URL, concurrency: 4, requests: 24, asJSON: true})
	if err != nil {
		t.Fatalf("loadgen: %v\n%s", err, sb.String())
	}
	var rep LoadReport
	if err := json.Unmarshal([]byte(sb.String()), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Errorf("%d errors: %v", rep.Errors, rep.StatusCount)
	}
	// 24 requests cycle the 9-benchmark suite: repeats must hit the cache.
	if rep.CacheHits < 1 {
		t.Errorf("cacheHits = %d, want > 0", rep.CacheHits)
	}
}

func TestLoadgenExploreMix(t *testing.T) {
	ts := httptest.NewServer(serve.New(serve.Config{}).Handler())
	defer ts.Close()

	var sb strings.Builder
	err := runLoadgen(&sb, loadOptions{
		addr: ts.URL, concurrency: 4, requests: 16, explore: true, asJSON: true,
	})
	if err != nil {
		t.Fatalf("loadgen -explore: %v\n%s", err, sb.String())
	}
	var rep LoadReport
	if err := json.Unmarshal([]byte(sb.String()), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Errorf("%d errors: %v", rep.Errors, rep.StatusCount)
	}
	// 16 requests with stride 4 → exactly 4 explore sweeps.
	if rep.Explore != 4 {
		t.Errorf("exploreRequests = %d, want 4", rep.Explore)
	}
}

func TestLoadgenClusterReport(t *testing.T) {
	var peers []cluster.Peer
	for i := 0; i < 2; i++ {
		id := fmt.Sprintf("w%d", i)
		ts := httptest.NewServer(serve.New(serve.Config{ID: id}).Handler())
		defer ts.Close()
		peers = append(peers, cluster.Peer{ID: id, URL: ts.URL})
	}
	co, err := cluster.New(cluster.Config{Peers: peers, ProbeInterval: 25 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	co.Start(context.Background())
	front := httptest.NewServer(co.Handler())
	defer front.Close()

	var sb strings.Builder
	err = runLoadgen(&sb, loadOptions{
		addr: front.URL, concurrency: 4, requests: 24, cluster: true, asJSON: true,
	})
	if err != nil {
		t.Fatalf("loadgen -cluster: %v\n%s", err, sb.String())
	}
	var rep LoadReport
	if err := json.Unmarshal([]byte(sb.String()), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Errorf("%d errors: %v", rep.Errors, rep.StatusCount)
	}
	if len(rep.Workers) == 0 {
		t.Fatal("no per-worker split in the -cluster report")
	}
	var hits int64
	for id, wl := range rep.Workers {
		if wl.Requests == 0 {
			t.Errorf("worker %s reported with zero requests", id)
		}
		hits += wl.CacheHits
	}
	if hits < 1 {
		t.Errorf("aggregate per-worker cache hits = %d, want > 0", hits)
	}
	if rep.Cluster == nil {
		t.Fatal("no /v1/cluster status in the -cluster report")
	}
	if got := len(rep.Cluster.Ring.Members); got != 2 {
		t.Errorf("scraped ring has %d members, want 2", got)
	}
}
