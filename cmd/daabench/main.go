// Command daabench regenerates every table and figure of the reconstructed
// evaluation (see DESIGN.md for the per-experiment index):
//
//	E1 / Table 1   knowledge-base inventory
//	E2 / Table 2   MCS6502 design, DAA vs baselines
//	E3 / Table 3   synthesis statistics on the MCS6502
//	E4 / Figure 1  design evolution through the phases
//	E5 / Figure 2  scaling across the benchmark suite
//	E6 / Table 4   cross-benchmark design quality
//	E7 (extension) knowledge-ablation study
//	E8 (engine)    per-rule match cost and conflict-set statistics
//
// Usage:
//
//	daabench              run everything
//	daabench -only E2     run one experiment
//	daabench -bench gcd   use a different benchmark for E2/E3/E4/E8
//	daabench -json        emit machine-readable per-benchmark results
//
// With -json the tables are replaced by one JSON document with component
// counts, firings, match calls, and elapsed time per benchmark and phase,
// for recording the bench trajectory (BENCH_*.json) from CI.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/exp"
)

func main() {
	var (
		only      = flag.String("only", "", "run a single experiment: E1..E8")
		benchName = flag.String("bench", "mcs6502", "benchmark for E2, E3, E4, and E8")
		asJSON    = flag.Bool("json", false, "emit machine-readable per-benchmark results instead of tables")
	)
	flag.Parse()
	if err := run(strings.ToUpper(*only), *benchName, *asJSON); err != nil {
		fmt.Fprintln(os.Stderr, "daabench:", err)
		os.Exit(1)
	}
}

func run(only, benchName string, asJSON bool) error {
	w := os.Stdout
	if asJSON {
		if only != "" {
			return fmt.Errorf("-json runs the whole suite; drop -only")
		}
		return exp.WriteJSON(w)
	}
	switch only {
	case "":
		return exp.All(w)
	case "E1":
		exp.RenderE1(w)
		return nil
	case "E2":
		return exp.RenderE2(w, benchName)
	case "E3":
		return exp.RenderE3(w, benchName)
	case "E4":
		return exp.RenderE4(w, benchName)
	case "E5":
		return exp.RenderE5(w)
	case "E6":
		return exp.RenderE6(w)
	case "E7":
		return exp.RenderE7(w)
	case "E8", "ENGINE":
		return exp.RenderEngineMetrics(w, benchName)
	default:
		return fmt.Errorf("unknown experiment %q (want E1..E8)", only)
	}
}
