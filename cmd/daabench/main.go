// Command daabench regenerates every table and figure of the reconstructed
// evaluation (see DESIGN.md for the per-experiment index):
//
//	E1 / Table 1   knowledge-base inventory
//	E2 / Table 2   MCS6502 design, DAA vs baselines
//	E3 / Table 3   synthesis statistics on the MCS6502
//	E4 / Figure 1  design evolution through the phases
//	E5 / Figure 2  scaling across the benchmark suite
//	E6 / Table 4   cross-benchmark design quality
//	E7 (extension) knowledge-ablation study
//	E8 (engine)    per-rule match cost and conflict-set statistics
//	E9 (extension) behavioral-vs-RTL cosimulation verdicts
//	E10 (extension) design-space exploration: knob grid vs the paper's point
//	STAGES         per-stage pipeline wall time (internal/flow)
//
// Usage:
//
//	daabench                 run everything
//	daabench -only E2        run one experiment
//	daabench -only stages    print the pipeline stage-timing table
//	daabench -bench gcd      use a different benchmark for E2/E3/E4/E8/E10/STAGES
//	daabench -json           emit machine-readable per-benchmark results
//	daabench -json -lite     same, on the interpreted Rete-lite matcher
//	daabench -json -verify   same, with cosim verdicts and stage timings
//
// With -json the tables are replaced by one JSON document with component
// counts, firings, match calls, match and elapsed time, Rete network
// activity, pipeline stage timings, and flow-cache hit/miss counts per
// benchmark and phase, for recording the bench trajectory (BENCH_*.json)
// from CI. -lite and -exhaustive rerun the suite on the interpreted
// matchers, so CI can diff pattern tests and match time against the
// compiled Rete network; -verify adds the emit and cosim stages so the
// equivalence verdict and cosim timing ride in the same record. The
// suite-wide experiments fan
// out across a bounded worker pool; the output stays byte-deterministic
// apart from the measured times. Usage mistakes exit 1; internal failures
// exit 3.
//
// Loadgen mode drives a running daad daemon (cmd/daad) instead of
// synthesizing in-process, replaying the embedded suite concurrently and
// reporting throughput and latency percentiles — the serving-path
// benchmark:
//
//	daabench -loadgen -addr http://localhost:8547            human summary
//	daabench -loadgen -addr ... -c 32 -n 256 -json           JSON report
//	daabench -loadgen -addr ... -no-cache                    force full syntheses
//	daabench -loadgen -addr ... -explore                     mix in /v1/explore sweeps
//
// With -explore every fourth request becomes a small fixed-grid
// POST /v1/explore sweep over the cycled benchmark (two allocators crossed
// with cleanup on/off), so the serving-path numbers cover the
// design-space-exploration endpoint alongside plain synthesis.
package main

import (
	"context"
	"flag"
	"io"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/flow"
)

func main() {
	var (
		only      = flag.String("only", "", "run a single experiment: E1..E10, or 'stages'")
		benchName = flag.String("bench", "mcs6502", "benchmark for E2, E3, E4, E8, E10, and stages")
		asJSON    = flag.Bool("json", false, "emit machine-readable per-benchmark results instead of tables")
		lite      = flag.Bool("lite", false, "with -json: use the interpreted Rete-lite matcher (baseline for match-cost diffs)")
		exhaust   = flag.Bool("exhaustive", false, "with -json: recompute the conflict set from scratch every cycle")
		verify    = flag.Bool("verify", false, "with -json: run the emit and cosim stages and record the equivalence verdict per benchmark")
		loadgen   = flag.Bool("loadgen", false, "replay the embedded suite against a daad daemon (see -addr, -c, -n)")
		addr      = flag.String("addr", "", "daad base URL for -loadgen (e.g. http://localhost:8547)")
		clients   = flag.Int("c", 32, "concurrent clients for -loadgen")
		requests  = flag.Int("n", 128, "total requests for -loadgen (cycled over the suite)")
		noCache   = flag.Bool("no-cache", false, "ask the daemon to bypass its design cache (-loadgen)")
		clusterFl = flag.Bool("cluster", false, "with -loadgen: -addr is a coordinator; report per-worker shard heat and failovers")
		exploreFl = flag.Bool("explore", false, "with -loadgen: make every fourth request a small /v1/explore sweep")
	)
	flag.Parse()
	var err error
	if *loadgen {
		err = runLoadgen(os.Stdout, loadOptions{
			addr:        *addr,
			concurrency: *clients,
			requests:    *requests,
			noCache:     *noCache,
			cluster:     *clusterFl,
			explore:     *exploreFl,
			asJSON:      *asJSON,
		})
	} else {
		err = run(os.Stdout, strings.ToUpper(*only), *benchName, *asJSON, *verify, core.Options{
			LiteMatch:       *lite,
			ExhaustiveMatch: *exhaust,
		})
	}
	if err != nil {
		flow.WriteError(os.Stderr, "daabench", err)
		os.Exit(flow.ExitCode(err))
	}
}

func run(w io.Writer, only, benchName string, asJSON, verify bool, copt core.Options) error {
	ctx := context.Background()
	if asJSON {
		if only != "" {
			return flow.Usagef("-json runs the whole suite; drop -only")
		}
		return exp.WriteJSONOpts(ctx, w, copt, verify)
	}
	if copt.LiteMatch || copt.ExhaustiveMatch {
		return flow.Usagef("-lite/-exhaustive record matcher baselines; combine them with -json")
	}
	if verify {
		return flow.Usagef("-verify records cosim verdicts; combine it with -json (or run -only E9 for the table)")
	}
	switch only {
	case "":
		return exp.All(ctx, w)
	case "E1":
		exp.RenderE1(w)
		return nil
	case "E2":
		return exp.RenderE2(ctx, w, benchName)
	case "E3":
		return exp.RenderE3(ctx, w, benchName)
	case "E4":
		return exp.RenderE4(ctx, w, benchName)
	case "E5":
		return exp.RenderE5(ctx, w)
	case "E6":
		return exp.RenderE6(ctx, w)
	case "E7":
		return exp.RenderE7(ctx, w)
	case "E8", "ENGINE":
		return exp.RenderEngineMetrics(ctx, w, benchName)
	case "E9", "COSIM":
		return exp.RenderE9(ctx, w)
	case "E10", "EXPLORE":
		return exp.RenderE10(ctx, w, benchName)
	case "STAGES":
		return exp.RenderStageTiming(ctx, w, benchName)
	default:
		return flow.Usagef("unknown experiment %q (want E1..E10, or stages)", only)
	}
}
