package main

import (
	"io"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/flow"
)

func TestSingleExperiments(t *testing.T) {
	for _, e := range []string{"E1", "E2", "E3", "E4", "E8", "STAGES"} {
		if err := run(io.Discard, e, "gcd", false, false, core.Options{}); err != nil {
			t.Fatalf("%s: %v", e, err)
		}
	}
}

func TestStageTimingTable(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "STAGES", "gcd", false, false, core.Options{}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"stage timing", "parse", "allocate", "total", "gcd"} {
		if !strings.Contains(out, want) {
			t.Errorf("stage-timing table missing %q:\n%s", want, out)
		}
	}
}

func TestCosimTable(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "E9", "gcd", false, false, core.Options{}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"E9", "cosimulation", "verdict", "PASS", "gcd", "mcs6502"} {
		if !strings.Contains(out, want) {
			t.Errorf("cosim table missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "FAIL") {
		t.Errorf("cosim table reports a failing benchmark:\n%s", out)
	}
}

func TestUnknownExperiment(t *testing.T) {
	err := run(io.Discard, "E42", "gcd", false, false, core.Options{})
	if flow.ExitCode(err) != flow.ExitUsage {
		t.Errorf("unknown experiment: exit %d (%v), want usage", flow.ExitCode(err), err)
	}
}

func TestUnknownBenchmark(t *testing.T) {
	if err := run(io.Discard, "E2", "nope", false, false, core.Options{}); err == nil {
		t.Error("expected error for unknown benchmark")
	}
}

func TestJSONRejectsOnly(t *testing.T) {
	err := run(io.Discard, "E2", "gcd", true, false, core.Options{})
	if flow.ExitCode(err) != flow.ExitUsage {
		t.Errorf("-json with -only: exit %d (%v), want usage", flow.ExitCode(err), err)
	}
}

func TestVerifyRequiresJSON(t *testing.T) {
	err := run(io.Discard, "", "gcd", false, true, core.Options{})
	if flow.ExitCode(err) != flow.ExitUsage {
		t.Errorf("-verify without -json: exit %d (%v), want usage", flow.ExitCode(err), err)
	}
}

func TestJSONOutputShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite synthesis in -short mode")
	}
	var sb strings.Builder
	if err := run(&sb, "", "mcs6502", true, false, core.Options{}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"results"`, `"bench"`, `"phases"`, `"stages"`, `"elapsedMs"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON output missing %q", want)
		}
	}
	if strings.Contains(out, `"equivalent"`) {
		t.Error("JSON output carries a verdict without -verify")
	}
}

func TestJSONVerifyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite cosimulation in -short mode")
	}
	var sb strings.Builder
	if err := run(&sb, "", "mcs6502", true, true, core.Options{}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"equivalent": true`, `"name": "cosim"`, `"name": "emit"`} {
		if !strings.Contains(out, want) {
			t.Errorf("-json -verify output missing %q", want)
		}
	}
	if strings.Contains(out, `"equivalent": false`) {
		t.Error("-json -verify reports a non-equivalent benchmark")
	}
}
