package main

import (
	"io"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/flow"
)

func TestSingleExperiments(t *testing.T) {
	for _, e := range []string{"E1", "E2", "E3", "E4", "E8", "STAGES"} {
		if err := run(io.Discard, e, "gcd", false, core.Options{}); err != nil {
			t.Fatalf("%s: %v", e, err)
		}
	}
}

func TestStageTimingTable(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "STAGES", "gcd", false, core.Options{}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"stage timing", "parse", "allocate", "total", "gcd"} {
		if !strings.Contains(out, want) {
			t.Errorf("stage-timing table missing %q:\n%s", want, out)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	err := run(io.Discard, "E9", "gcd", false, core.Options{})
	if flow.ExitCode(err) != flow.ExitUsage {
		t.Errorf("unknown experiment: exit %d (%v), want usage", flow.ExitCode(err), err)
	}
}

func TestUnknownBenchmark(t *testing.T) {
	if err := run(io.Discard, "E2", "nope", false, core.Options{}); err == nil {
		t.Error("expected error for unknown benchmark")
	}
}

func TestJSONRejectsOnly(t *testing.T) {
	err := run(io.Discard, "E2", "gcd", true, core.Options{})
	if flow.ExitCode(err) != flow.ExitUsage {
		t.Errorf("-json with -only: exit %d (%v), want usage", flow.ExitCode(err), err)
	}
}

func TestJSONOutputShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite synthesis in -short mode")
	}
	var sb strings.Builder
	if err := run(&sb, "", "mcs6502", true, core.Options{}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"results"`, `"bench"`, `"phases"`, `"stages"`, `"elapsedMs"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON output missing %q", want)
		}
	}
}
