package main

import "testing"

func TestSingleExperiments(t *testing.T) {
	for _, e := range []string{"E1", "E2", "E3", "E4", "E8"} {
		if err := run(e, "gcd", false); err != nil {
			t.Fatalf("%s: %v", e, err)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run("E9", "gcd", false); err == nil {
		t.Error("expected error for unknown experiment")
	}
}

func TestUnknownBenchmark(t *testing.T) {
	if err := run("E2", "nope", false); err == nil {
		t.Error("expected error for unknown benchmark")
	}
}

func TestJSONRejectsOnly(t *testing.T) {
	if err := run("E2", "gcd", true); err == nil {
		t.Error("expected error combining -json with -only")
	}
}
