package main

import "testing"

func TestSingleExperiments(t *testing.T) {
	for _, e := range []string{"E1", "E2", "E3", "E4"} {
		if err := run(e, "gcd"); err != nil {
			t.Fatalf("%s: %v", e, err)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run("E9", "gcd"); err == nil {
		t.Error("expected error for unknown experiment")
	}
}

func TestUnknownBenchmark(t *testing.T) {
	if err := run("E2", "nope"); err == nil {
		t.Error("expected error for unknown benchmark")
	}
}
