package main

// Tests of the cluster boot modes: the -cluster N smoke topology end to
// end over real TCP, and -peers parsing.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/flow"
	"repro/internal/serve"
)

func TestSmokeClusterEndToEnd(t *testing.T) {
	cfg := serve.Config{Logger: log.New(io.Discard, "", 0)}
	sc, err := bootSmokeCluster("127.0.0.1:0", 3, cfg, 25*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	go sc.co.Serve(sc.listener)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := sc.shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	base := "http://" + sc.listener.Addr().String()

	src, err := bench.Source("gcd")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(serve.SynthesizeRequest{Name: "gcd.isps", Source: src})
	var worker string
	for i := 0; i < 2; i++ {
		resp, err := http.Post(base+"/v1/synthesize", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("synthesize %d: %s", resp.StatusCode, raw)
		}
		got := resp.Header.Get("X-DAAD-Worker")
		if i == 0 {
			worker = got
		} else if got != worker {
			t.Errorf("repeat routed to %s, first to %s", got, worker)
		} else if c := resp.Header.Get("X-DAAD-Cache"); c != "hit" {
			t.Errorf("repeat on the same shard was %q, want hit", c)
		}
	}

	resp, err := http.Get(base + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var status cluster.StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if got := len(status.Ring.Members); got != 3 {
		t.Errorf("ring has %d members, want 3", got)
	}
}

func TestParsePeers(t *testing.T) {
	peers, err := parsePeers(" hostA:8547, http://hostB:9000 ,,")
	if err != nil {
		t.Fatal(err)
	}
	want := []cluster.Peer{
		{ID: "hostA:8547", URL: "http://hostA:8547"},
		{ID: "http://hostB:9000", URL: "http://hostB:9000"},
	}
	if len(peers) != len(want) {
		t.Fatalf("parsed %d peers, want %d: %v", len(peers), len(want), peers)
	}
	for i := range want {
		if peers[i] != want[i] {
			t.Errorf("peer %d = %+v, want %+v", i, peers[i], want[i])
		}
	}
	if _, err := parsePeers(" ,, "); flow.ExitCode(err) != flow.ExitUsage {
		t.Errorf("empty -peers: %v, want usage error", err)
	}
}
