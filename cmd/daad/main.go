// Command daad is the DAA synthesis daemon: a long-running HTTP/JSON
// service over the staged pipeline, turning the batch synthesizer into
// the interactive assistant the paper pitches. Clients submit ISPS
// behavioral descriptions and get back register-transfer structures, cost
// tables, and positioned diagnostics; cmd/daa targets a daemon with
// -remote, and cmd/daabench's loadgen mode drives one for serving-path
// benchmarks.
//
// Usage:
//
//	daad                          serve on :8547 with defaults
//	daad -addr :9000 -workers 8   bind elsewhere, bound the pool
//	daad -queue 128 -cache 1024   deeper admission queue, bigger cache
//	daad -id w3 -warmup           name the worker, warm before ready
//	daad -cluster 3               coordinator + 3 in-process workers
//	daad -coordinator -peers host1:8547,host2:8547
//
// Endpoints (see internal/serve): POST /v1/synthesize, POST /v1/batch,
// POST /v1/lint, POST /v1/explore (knob-grid sweeps to a Pareto front,
// bounded by -max-grid), GET /v1/explain, GET /v1/healthz,
// GET /v1/metrics. Cluster modes add GET /v1/cluster (see
// internal/cluster).
//
// On SIGINT/SIGTERM the daemon drains gracefully: new work is refused
// with 503 while in-flight syntheses run to completion, bounded by
// -drain-timeout. In cluster modes the coordinator drains first, then
// the workers.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"runtime"
	"time"

	"repro/internal/flow"
	"repro/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8547", "listen address")
		workers      = flag.Int("workers", 0, "max concurrent syntheses (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 64, "admission queue depth beyond the workers (requests past it get 429)")
		cacheN       = flag.Int("cache", 0, "design-cache entries (0 = default, negative disables)")
		frontCacheN  = flag.Int("front-cache", 0, "front-end artifact cache entries (0 = flow default)")
		maxBody      = flag.Int64("max-body", 1<<20, "request body size limit in bytes")
		deadline     = flag.Duration("deadline", 60*time.Second, "default per-request synthesis deadline")
		maxDeadline  = flag.Duration("max-deadline", 5*time.Minute, "clamp on client-supplied deadlines")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown bound for in-flight work")
		parallel     = flag.Int("parallel-match", 0, "shard Rete beta propagation across this many workers per synthesis (0 = serial)")
		maxGrid      = flag.Int("max-grid", 0, "largest /v1/explore grid accepted, in points (0 = default 64, negative disables the endpoint's cap)")

		id            = flag.String("id", "", "worker identity reported in X-DAAD-Worker")
		warmup        = flag.Bool("warmup", false, "synthesize a small benchmark before reporting ready")
		clusterN      = flag.Int("cluster", 0, "boot a coordinator on -addr over this many in-process workers (smoke mode)")
		coordinator   = flag.Bool("coordinator", false, "route to external workers listed in -peers instead of synthesizing")
		peers         = flag.String("peers", "", "comma-separated worker addresses for -coordinator (host:port or full URLs)")
		probeInterval = flag.Duration("probe-interval", 500*time.Millisecond, "readiness-probe spacing per worker (cluster modes)")
	)
	flag.Parse()
	cfg := serve.Config{
		ID:                *id,
		Workers:           *workers,
		QueueDepth:        *queue,
		CacheEntries:      *cacheN,
		FrontCacheEntries: *frontCacheN,
		MaxBodyBytes:      *maxBody,
		DefaultDeadline:   *deadline,
		MaxDeadline:       *maxDeadline,
		ParallelMatch:     *parallel,
		MaxGridPoints:     *maxGrid,
		Logger:            log.New(os.Stderr, "daad ", log.LstdFlags|log.Lmicroseconds),
	}
	var err error
	switch {
	case *clusterN > 0 && *coordinator:
		err = flow.Usagef("-cluster and -coordinator are exclusive: the former boots its own workers")
	case *clusterN > 0:
		err = runSmokeCluster(*addr, *clusterN, cfg, *drainTimeout, *probeInterval)
	case *coordinator:
		err = runCoordinator(*addr, *peers, *drainTimeout, *probeInterval, cfg.Logger)
	default:
		err = run(*addr, cfg, *drainTimeout, *warmup)
	}
	if err != nil {
		flow.WriteError(os.Stderr, "daad", err)
		os.Exit(flow.ExitCode(err))
	}
}

func run(addr string, cfg serve.Config, drainTimeout time.Duration, warmup bool) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", addr, err)
	}
	s := serve.New(cfg)
	if warmup {
		// Serve while warming — liveness stays up and early requests are
		// answered — but fail readiness so routers wait for a hot worker.
		s.SetReady(false)
		go func() {
			if err := s.Warm(context.Background()); err != nil {
				cfg.Logger.Printf("warmup failed (serving anyway): %v", err)
			}
			s.SetReady(true)
			cfg.Logger.Printf("warm, reporting ready")
		}()
	}
	cfg.Logger.Printf("listening on http://%s (workers=%d queue=%d)", l.Addr(), effectiveWorkers(cfg), cfg.QueueDepth)
	return serveUntilSignal(cfg.Logger, drainTimeout, func() error { return s.Serve(l) }, s.Shutdown)
}

func effectiveWorkers(cfg serve.Config) int {
	if cfg.Workers > 0 {
		return cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}
