// Command daad is the DAA synthesis daemon: a long-running HTTP/JSON
// service over the staged pipeline, turning the batch synthesizer into
// the interactive assistant the paper pitches. Clients submit ISPS
// behavioral descriptions and get back register-transfer structures, cost
// tables, and positioned diagnostics; cmd/daa targets a daemon with
// -remote, and cmd/daabench's loadgen mode drives one for serving-path
// benchmarks.
//
// Usage:
//
//	daad                          serve on :8547 with defaults
//	daad -addr :9000 -workers 8   bind elsewhere, bound the pool
//	daad -queue 128 -cache 1024   deeper admission queue, bigger cache
//
// Endpoints (see internal/serve): POST /v1/synthesize, POST /v1/batch,
// POST /v1/lint, GET /v1/explain, GET /v1/healthz, GET /v1/metrics.
//
// On SIGINT/SIGTERM the daemon drains gracefully: new work is refused
// with 503 while in-flight syntheses run to completion, bounded by
// -drain-timeout.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/flow"
	"repro/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8547", "listen address")
		workers      = flag.Int("workers", 0, "max concurrent syntheses (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 64, "admission queue depth beyond the workers (requests past it get 429)")
		cacheN       = flag.Int("cache", 0, "design-cache entries (0 = default, negative disables)")
		frontCacheN  = flag.Int("front-cache", 0, "front-end artifact cache entries (0 = flow default)")
		maxBody      = flag.Int64("max-body", 1<<20, "request body size limit in bytes")
		deadline     = flag.Duration("deadline", 60*time.Second, "default per-request synthesis deadline")
		maxDeadline  = flag.Duration("max-deadline", 5*time.Minute, "clamp on client-supplied deadlines")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown bound for in-flight work")
		parallel     = flag.Int("parallel-match", 0, "shard Rete beta propagation across this many workers per synthesis (0 = serial)")
	)
	flag.Parse()
	if err := run(*addr, serve.Config{
		Workers:           *workers,
		QueueDepth:        *queue,
		CacheEntries:      *cacheN,
		FrontCacheEntries: *frontCacheN,
		MaxBodyBytes:      *maxBody,
		DefaultDeadline:   *deadline,
		MaxDeadline:       *maxDeadline,
		ParallelMatch:     *parallel,
		Logger:            log.New(os.Stderr, "daad ", log.LstdFlags|log.Lmicroseconds),
	}, *drainTimeout); err != nil {
		flow.WriteError(os.Stderr, "daad", err)
		os.Exit(flow.ExitCode(err))
	}
}

func run(addr string, cfg serve.Config, drainTimeout time.Duration) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", addr, err)
	}
	s := serve.New(cfg)
	cfg.Logger.Printf("listening on http://%s (workers=%d queue=%d)", l.Addr(), effectiveWorkers(cfg), cfg.QueueDepth)

	errc := make(chan error, 1)
	go func() { errc <- s.Serve(l) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		cfg.Logger.Printf("received %v, draining (timeout %v)", sig, drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		if err := <-errc; err != nil && err != http.ErrServerClosed {
			return err
		}
		cfg.Logger.Printf("drained, exiting")
		return nil
	}
}

func effectiveWorkers(cfg serve.Config) int {
	if cfg.Workers > 0 {
		return cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}
