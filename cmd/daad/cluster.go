package main

// Cluster boot modes. -cluster N is the smoke topology: one process
// hosting N workers on loopback listeners behind a coordinator on -addr —
// enough to exercise sharding, failover, and per-shard cache heat on one
// machine (CI runs it under -race). -coordinator -peers a,b,c is the
// production shape: the coordinator routes to daad workers started
// elsewhere, each typically booted with -id and -warmup.

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/flow"
	"repro/internal/serve"
)

// runCoordinator fronts external workers: probe, route, drain on signal.
func runCoordinator(addr, peers string, drainTimeout, probeInterval time.Duration, logger *log.Logger) error {
	peerList, err := parsePeers(peers)
	if err != nil {
		return err
	}
	co, err := cluster.New(cluster.Config{
		Peers:         peerList,
		ProbeInterval: probeInterval,
		Logger:        logger,
	})
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", addr, err)
	}
	co.Start(context.Background())
	up := co.Ring().Len()
	logger.Printf("coordinator on http://%s over %d workers (%d ready)", l.Addr(), len(peerList), up)
	if up == 0 {
		logger.Printf("no workers ready yet; routing resumes when probes succeed")
	}
	return serveUntilSignal(logger, drainTimeout, func() error { return co.Serve(l) }, co.Shutdown)
}

// smokeCluster is a booted -cluster N topology: the coordinator, its
// listener, and the worker pool, with a drain that takes them down in
// routing order.
type smokeCluster struct {
	co       *cluster.Coordinator
	listener net.Listener
	workers  []*serve.Server
}

// shutdown drains in routing order: the coordinator stops accepting and
// finishes forwarding first, then the workers drain their in-flight
// syntheses in parallel.
func (sc *smokeCluster) shutdown(ctx context.Context) error {
	if err := sc.co.Shutdown(ctx); err != nil {
		return err
	}
	var wg sync.WaitGroup
	errs := make([]error, len(sc.workers))
	for i, s := range sc.workers {
		wg.Add(1)
		go func(i int, s *serve.Server) {
			defer wg.Done()
			errs[i] = s.Shutdown(ctx)
		}(i, s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// bootSmokeCluster starts n workers on loopback listeners and a started
// (probing) coordinator listening on addr. The caller serves
// sc.co.Serve(sc.listener) and drains with sc.shutdown.
func bootSmokeCluster(addr string, n int, cfg serve.Config, probeInterval time.Duration) (*smokeCluster, error) {
	if n > 64 {
		return nil, flow.Usagef("-cluster %d: more than 64 in-process workers is not a smoke test", n)
	}
	logger := cfg.Logger
	sc := &smokeCluster{}
	var peers []cluster.Peer
	for i := 0; i < n; i++ {
		wcfg := cfg
		wcfg.ID = fmt.Sprintf("w%d", i)
		wcfg.Logger = log.New(logger.Writer(), fmt.Sprintf("daad[%s] ", wcfg.ID), logger.Flags())
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("worker %s listen: %w", wcfg.ID, err)
		}
		s := serve.New(wcfg)
		sc.workers = append(sc.workers, s)
		peers = append(peers, cluster.Peer{ID: wcfg.ID, URL: "http://" + l.Addr().String()})
		go s.Serve(l)
		logger.Printf("worker %s on http://%s", wcfg.ID, l.Addr())
	}
	co, err := cluster.New(cluster.Config{
		Peers:         peers,
		ProbeInterval: probeInterval,
		Logger:        logger,
	})
	if err != nil {
		return nil, err
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("listen %s: %w", addr, err)
	}
	co.Start(context.Background())
	sc.co, sc.listener = co, l
	logger.Printf("coordinator on http://%s over %d in-process workers", l.Addr(), n)
	return sc, nil
}

// runSmokeCluster boots n in-process workers on loopback listeners and a
// coordinator over them on addr.
func runSmokeCluster(addr string, n int, cfg serve.Config, drainTimeout, probeInterval time.Duration) error {
	sc, err := bootSmokeCluster(addr, n, cfg, probeInterval)
	if err != nil {
		return err
	}
	return serveUntilSignal(cfg.Logger, drainTimeout, func() error { return sc.co.Serve(sc.listener) }, sc.shutdown)
}

// serveUntilSignal runs serve and drains via shutdown on SIGINT/SIGTERM,
// the shared tail of every boot mode.
func serveUntilSignal(logger *log.Logger, drainTimeout time.Duration, serveFn func() error, shutdown func(context.Context) error) error {
	errc := make(chan error, 1)
	go func() { errc <- serveFn() }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		logger.Printf("received %v, draining (timeout %v)", sig, drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := shutdown(ctx); err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		if err := <-errc; err != nil && err != http.ErrServerClosed {
			return err
		}
		logger.Printf("drained, exiting")
		return nil
	}
}

// parsePeers splits the -peers list, defaulting bare host:port entries to
// http. IDs are the entries as written, so X-DAAD-Worker matches the
// operator's own naming.
func parsePeers(peers string) ([]cluster.Peer, error) {
	var out []cluster.Peer
	for _, raw := range strings.Split(peers, ",") {
		entry := strings.TrimSpace(raw)
		if entry == "" {
			continue
		}
		u := entry
		if !strings.Contains(u, "://") {
			u = "http://" + u
		}
		out = append(out, cluster.Peer{ID: entry, URL: u})
	}
	if len(out) == 0 {
		return nil, flow.Usagef("-coordinator needs -peers host:port[,host:port...]")
	}
	return out, nil
}
