package main

import "testing"

func TestListExitsClean(t *testing.T) {
	if code := run([]string{"-list"}); code != 0 {
		t.Fatalf("-list exited %d, want 0", code)
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	if code := run([]string{"-only", "nope"}); code != 2 {
		t.Fatalf("-only nope exited %d, want 2", code)
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go list")
	}
	// The cost package is tiny, dependency-light, and must stay clean —
	// the CI gate runs the same analyzers over the whole tree.
	if code := run([]string{"repro/internal/cost"}); code != 0 {
		t.Fatalf("lint of internal/cost exited %d, want 0", code)
	}
}

func TestFixturePackageIsFlagged(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go list")
	}
	// The analysistest fixtures live under testdata and are full of
	// deliberate violations; loading one through the CLI must exit 1.
	if code := run([]string{"-only", "ctxflow", "repro/internal/analysis/testdata/src/ctxflow"}); code != 1 {
		t.Fatalf("lint of the ctxflow fixture exited %d, want 1", code)
	}
}
