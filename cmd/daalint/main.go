// Command daalint runs the repository's invariant analyzers — txonly,
// detmap, ctxflow — over a set of Go packages and prints every finding in
// file:line:col form. It is the multichecker CI runs as the lint gate:
//
//	go run ./cmd/daalint ./...
//
// Exit status is 0 when the tree is clean, 1 when any analyzer (or the
// type checker) reports a finding, and 2 on usage or load errors.
// Individual lines are suppressed with a `//daalint:allow <analyzer>
// <reason>` comment on or directly above the offending line.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("daalint", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	list := fs.Bool("list", false, "describe the available analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: daalint [-list] [-only a,b] [packages]\n\n"+
			"Runs the project invariant analyzers over the packages (default ./...).\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%s\n", a.Name)
			for _, line := range strings.Split(a.Doc, "\n") {
				fmt.Printf("    %s\n", line)
			}
			fmt.Println()
		}
		return 0
	}
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "daalint: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader := analysis.NewLoader("")
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "daalint: %v\n", err)
		return 2
	}
	findings, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "daalint: %v\n", err)
		return 2
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "daalint: %d findings in %d packages\n", len(findings), len(pkgs))
		return 1
	}
	return 0
}
