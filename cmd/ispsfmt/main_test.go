package main

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/flow"
	"repro/internal/isps"
)

func TestFormatBench(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, nil, "gcd", false, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "processor GCD") {
		t.Errorf("formatted output missing processor header:\n%s", sb.String())
	}
}

func TestCheckCanonical(t *testing.T) {
	src, err := bench.Source("counter")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := isps.Parse("counter", src)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "c.isps")
	if err := os.WriteFile(path, []byte(isps.Format(prog)), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(io.Discard, []string{path}, "", true, false); err != nil {
		t.Fatalf("canonical file failed -check: %v", err)
	}
	// The raw benchmark source is not canonical (comments, spacing): a
	// -check failure is an input diagnostic, exit 2.
	raw := filepath.Join(dir, "raw.isps")
	if err := os.WriteFile(raw, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	err = run(io.Discard, []string{raw}, "", true, false)
	if flow.ExitCode(err) != flow.ExitDiagnostic {
		t.Errorf("non-canonical -check: exit %d (%v), want diagnostic", flow.ExitCode(err), err)
	}
}

func TestLintFlag(t *testing.T) {
	// Clean benchmark: exit zero, a one-line summary.
	var sb strings.Builder
	if err := run(&sb, nil, "gcd", false, true); err != nil {
		t.Fatalf("clean benchmark failed lint: %v", err)
	}
	if !strings.Contains(sb.String(), "gcd.isps: clean") {
		t.Errorf("clean lint summary missing: %q", sb.String())
	}
	// Dirty file: lint findings are input diagnostics, exit 2.
	dir := t.TempDir()
	path := filepath.Join(dir, "d.isps")
	src := "processor P { reg A<7:0> reg GHOST main m { A := A } }"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run(io.Discard, []string{path}, "", false, true)
	if flow.ExitCode(err) != flow.ExitDiagnostic {
		t.Errorf("dirty description: exit %d (%v), want diagnostic", flow.ExitCode(err), err)
	}
}

// TestLintAllBenchmarksClean pins the golden property that every embedded
// benchmark passes the semantic linter.
func TestLintAllBenchmarksClean(t *testing.T) {
	for _, name := range bench.Names() {
		var sb strings.Builder
		if err := run(&sb, nil, name, false, true); err != nil {
			t.Errorf("%s: lint failed: %v", name, err)
			continue
		}
		if !strings.Contains(sb.String(), ": clean") {
			t.Errorf("%s: missing clean summary: %q", name, sb.String())
		}
	}
}

// TestLintCaretRendering checks -lint findings render like parse/sema
// diagnostics: file:line:col position, the offending source line, and a
// caret under the column.
func TestLintCaretRendering(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "warn.isps")
	src := `processor P {
    reg A<7:0>
    reg B<3:0>
    port out Y<7:0>
    main m {
        if A eql B { Y := A }
        decode A<1:0> {
            0: Y := 1  1: Y := 2  2: Y := 3  3: Y := 4
            otherwise: nop
        }
    }
}
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run(io.Discard, []string{path}, "", false, true)
	if flow.ExitCode(err) != flow.ExitDiagnostic {
		t.Fatalf("exit %d (%v), want diagnostic", flow.ExitCode(err), err)
	}
	var dl flow.DiagnosticList
	if !errors.As(err, &dl) {
		t.Fatalf("lint error is %T, want DiagnosticList", err)
	}
	for _, d := range dl {
		if d.Stage != flow.StageLint {
			t.Errorf("diagnostic stage %q, want %q", d.Stage, flow.StageLint)
		}
		if d.Pos.Line <= 0 || d.Pos.Col <= 0 {
			t.Errorf("diagnostic %v lacks a position", d)
		}
	}
	var sb strings.Builder
	flow.WriteError(&sb, "ispsfmt", err)
	out := sb.String()
	for _, want := range []string{
		"warn.isps:6:14: width-mismatch: comparing 8-bit A with 4-bit B",
		"warn.isps:7:9: unreachable-decode: otherwise arm is unreachable",
		"if A eql B { Y := A }", // source lines echoed for the caret
		"^",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered diagnostics missing %q:\n%s", want, out)
		}
	}
}

func TestFormatErrors(t *testing.T) {
	if err := run(io.Discard, nil, "", false, false); flow.ExitCode(err) != flow.ExitUsage {
		t.Errorf("no input: exit %d, want usage", flow.ExitCode(err))
	}
	if err := run(io.Discard, nil, "nope", false, false); flow.ExitCode(err) != flow.ExitUsage {
		t.Errorf("unknown benchmark: exit %d, want usage", flow.ExitCode(err))
	}
	if err := run(io.Discard, []string{"/no/such.isps"}, "", false, false); flow.ExitCode(err) != flow.ExitDiagnostic {
		t.Errorf("missing file: exit %d, want diagnostic", flow.ExitCode(err))
	}
}

// TestParseFailureCaret checks an unparsable file renders a positioned
// caret diagnostic.
func TestParseFailureCaret(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.isps")
	if err := os.WriteFile(path, []byte("processor X {\n    reg A<7:0\n}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run(io.Discard, []string{path}, "", false, false)
	if flow.ExitCode(err) != flow.ExitDiagnostic {
		t.Fatalf("exit %d (%v), want diagnostic", flow.ExitCode(err), err)
	}
	var sb strings.Builder
	flow.WriteError(&sb, "ispsfmt", err)
	if !strings.Contains(sb.String(), "bad.isps:") || !strings.Contains(sb.String(), "^") {
		t.Errorf("caret diagnostic missing:\n%s", sb.String())
	}
}
