package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/flow"
	"repro/internal/isps"
)

func TestFormatBench(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, nil, "gcd", false, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "processor GCD") {
		t.Errorf("formatted output missing processor header:\n%s", sb.String())
	}
}

func TestCheckCanonical(t *testing.T) {
	src, err := bench.Source("counter")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := isps.Parse("counter", src)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "c.isps")
	if err := os.WriteFile(path, []byte(isps.Format(prog)), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(io.Discard, []string{path}, "", true, false); err != nil {
		t.Fatalf("canonical file failed -check: %v", err)
	}
	// The raw benchmark source is not canonical (comments, spacing): a
	// -check failure is an input diagnostic, exit 2.
	raw := filepath.Join(dir, "raw.isps")
	if err := os.WriteFile(raw, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	err = run(io.Discard, []string{raw}, "", true, false)
	if flow.ExitCode(err) != flow.ExitDiagnostic {
		t.Errorf("non-canonical -check: exit %d (%v), want diagnostic", flow.ExitCode(err), err)
	}
}

func TestLintFlag(t *testing.T) {
	// Clean benchmark: exit zero.
	if err := run(io.Discard, nil, "gcd", false, true); err != nil {
		t.Fatalf("clean benchmark failed lint: %v", err)
	}
	// Dirty file: lint findings are input diagnostics, exit 2.
	dir := t.TempDir()
	path := filepath.Join(dir, "d.isps")
	src := "processor P { reg A<7:0> reg GHOST main m { A := A } }"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	err := run(&sb, []string{path}, "", false, true)
	if flow.ExitCode(err) != flow.ExitDiagnostic {
		t.Errorf("dirty description: exit %d (%v), want diagnostic", flow.ExitCode(err), err)
	}
	if sb.String() == "" {
		t.Error("lint warnings not printed")
	}
}

func TestFormatErrors(t *testing.T) {
	if err := run(io.Discard, nil, "", false, false); flow.ExitCode(err) != flow.ExitUsage {
		t.Errorf("no input: exit %d, want usage", flow.ExitCode(err))
	}
	if err := run(io.Discard, nil, "nope", false, false); flow.ExitCode(err) != flow.ExitUsage {
		t.Errorf("unknown benchmark: exit %d, want usage", flow.ExitCode(err))
	}
	if err := run(io.Discard, []string{"/no/such.isps"}, "", false, false); flow.ExitCode(err) != flow.ExitDiagnostic {
		t.Errorf("missing file: exit %d, want diagnostic", flow.ExitCode(err))
	}
}

// TestParseFailureCaret checks an unparsable file renders a positioned
// caret diagnostic.
func TestParseFailureCaret(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.isps")
	if err := os.WriteFile(path, []byte("processor X {\n    reg A<7:0\n}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run(io.Discard, []string{path}, "", false, false)
	if flow.ExitCode(err) != flow.ExitDiagnostic {
		t.Fatalf("exit %d (%v), want diagnostic", flow.ExitCode(err), err)
	}
	var sb strings.Builder
	flow.WriteError(&sb, "ispsfmt", err)
	if !strings.Contains(sb.String(), "bad.isps:") || !strings.Contains(sb.String(), "^") {
		t.Errorf("caret diagnostic missing:\n%s", sb.String())
	}
}
