package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bench"
	"repro/internal/isps"
)

func TestFormatBench(t *testing.T) {
	if err := run(nil, "gcd", false, false); err != nil {
		t.Fatal(err)
	}
}

func TestCheckCanonical(t *testing.T) {
	src, err := bench.Source("counter")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := isps.Parse("counter", src)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "c.isps")
	if err := os.WriteFile(path, []byte(isps.Format(prog)), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{path}, "", true, false); err != nil {
		t.Fatalf("canonical file failed -check: %v", err)
	}
	// The raw benchmark source is not canonical (comments, spacing).
	raw := filepath.Join(dir, "raw.isps")
	if err := os.WriteFile(raw, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{raw}, "", true, false); err == nil {
		t.Error("non-canonical file passed -check")
	}
}

func TestLintFlag(t *testing.T) {
	// Clean benchmark: exit zero.
	if err := run(nil, "gcd", false, true); err != nil {
		t.Fatalf("clean benchmark failed lint: %v", err)
	}
	// Dirty file: nonzero.
	dir := t.TempDir()
	path := filepath.Join(dir, "d.isps")
	src := "processor P { reg A<7:0> reg GHOST main m { A := A } }"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{path}, "", false, true); err == nil {
		t.Error("dirty description passed -lint")
	}
}

func TestFormatErrors(t *testing.T) {
	if err := run(nil, "", false, false); err == nil {
		t.Error("expected error without input")
	}
	if err := run(nil, "nope", false, false); err == nil {
		t.Error("expected error for unknown benchmark")
	}
	if err := run([]string{"/no/such.isps"}, "", false, false); err == nil {
		t.Error("expected error for missing file")
	}
}
