// Command ispsfmt parses an ISPS description and prints it back in
// canonical form (gofmt for ISPS). With -check it exits nonzero when the
// input is not already canonical.
//
// Parse, sema, and -lint problems are reported with file:line:col positions
// and a caret under the offending column; they and non-canonical -check
// results exit 2. A clean -lint run prints "<name>: clean" and exits 0.
// Usage mistakes exit 1.
//
// Usage:
//
//	ispsfmt design.isps           # print formatted source
//	ispsfmt -check design.isps    # verify formatting
//	ispsfmt -lint design.isps     # print description warnings
//	ispsfmt -bench mcs6502        # format an embedded benchmark
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bench"
	"repro/internal/flow"
	"repro/internal/isps"
)

func main() {
	var (
		check     = flag.Bool("check", false, "exit nonzero if not canonically formatted")
		lint      = flag.Bool("lint", false, "print lint warnings and exit nonzero if any")
		benchName = flag.String("bench", "", "format an embedded benchmark instead of a file")
	)
	flag.Parse()
	if err := run(os.Stdout, flag.Args(), *benchName, *check, *lint); err != nil {
		flow.WriteError(os.Stderr, "ispsfmt", err)
		os.Exit(flow.ExitCode(err))
	}
}

func run(w io.Writer, args []string, benchName string, check, lint bool) error {
	var in flow.Input
	switch {
	case benchName != "":
		var err error
		in, err = bench.Input(benchName)
		if err != nil {
			return flow.Usagef("%v", err)
		}
	case len(args) == 1:
		var err error
		in, err = flow.FileInput(args[0])
		if err != nil {
			return err
		}
	default:
		return flow.Usagef("pass exactly one file, or -bench name")
	}
	// The format path parses privately (no artifact cache): formatting
	// wants the exact tree of this source, and must not pay for a trace
	// build.
	prog, err := flow.Parse(context.Background(), in)
	if err != nil {
		return err
	}
	if lint {
		// Findings render like parse/sema diagnostics: file:line:col, the
		// source line, and a caret under the offending column (exit 2).
		if dl := flow.LintDiagnostics(in, isps.Lint(prog)); dl != nil {
			return dl
		}
		fmt.Fprintf(w, "%s: clean\n", in.Name)
		return nil
	}
	out := isps.Format(prog)
	if check {
		if out != in.Source {
			return flow.Diagf("format", in.Name, "not canonically formatted (run ispsfmt to rewrite)")
		}
		return nil
	}
	fmt.Fprint(w, out)
	return nil
}
