// Command ispsfmt parses an ISPS description and prints it back in
// canonical form (gofmt for ISPS). With -check it exits nonzero when the
// input is not already canonical.
//
// Usage:
//
//	ispsfmt design.isps           # print formatted source
//	ispsfmt -check design.isps    # verify formatting
//	ispsfmt -lint design.isps     # print description warnings
//	ispsfmt -bench mcs6502        # format an embedded benchmark
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/isps"
)

func main() {
	var (
		check     = flag.Bool("check", false, "exit nonzero if not canonically formatted")
		lint      = flag.Bool("lint", false, "print lint warnings and exit nonzero if any")
		benchName = flag.String("bench", "", "format an embedded benchmark instead of a file")
	)
	flag.Parse()
	if err := run(flag.Args(), *benchName, *check, *lint); err != nil {
		fmt.Fprintln(os.Stderr, "ispsfmt:", err)
		os.Exit(1)
	}
}

func run(args []string, benchName string, check, lint bool) error {
	var name, src string
	switch {
	case benchName != "":
		s, err := bench.Source(benchName)
		if err != nil {
			return err
		}
		name, src = benchName, s
	case len(args) == 1:
		b, err := os.ReadFile(args[0])
		if err != nil {
			return err
		}
		name, src = args[0], string(b)
	default:
		return fmt.Errorf("pass exactly one file, or -bench name")
	}
	prog, err := isps.Parse(name, src)
	if err != nil {
		return err
	}
	if lint {
		ws := isps.Lint(prog)
		for _, w := range ws {
			fmt.Println(w)
		}
		if len(ws) > 0 {
			return fmt.Errorf("%d lint warnings", len(ws))
		}
		return nil
	}
	out := isps.Format(prog)
	if check {
		if out != src {
			return fmt.Errorf("%s is not canonically formatted", name)
		}
		return nil
	}
	fmt.Print(out)
	return nil
}
