package main

// Golden test of -explain: the full provenance listing of every GCD
// component under the DAA allocator, byte-compared against testdata.
// Regenerate with: go test ./cmd/daa -run TestExplainGolden -update

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestExplainGolden(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, options{benchName: "gcd", allocator: "daa", explain: "all"}); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	golden := filepath.Join("testdata", "explain_gcd.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("-explain all output differs from %s (run with -update to regenerate):\n--- got ---\n%s", golden, got)
	}
}

func TestExplainSelector(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, options{benchName: "gcd", allocator: "daa", explain: "reg X"}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "allocate-register-for-carrier") {
		t.Errorf("explain output missing allocating rule:\n%s", out)
	}
	if !strings.Contains(out, `match "reg X"`) {
		t.Errorf("explain output missing header:\n%s", out)
	}
}

func TestJournalFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gcd.jnl")
	if err := runQuiet(options{benchName: "gcd", allocator: "daa", journal: path, stats: true}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"effect journal for", "phase control", "do place-op("} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("journal file missing %q", want)
		}
	}
}
