package main

// Tests of the verification surface: -verify prints a PASS verdict block,
// -emit-verilog writes the emit stage's artifact, -verilog streams the
// same bytes, and remote -verify renders byte-identically to local.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunVerifyVerdictBlock(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, options{benchName: "gcd", allocator: "daa", verify: true}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"equivalence: PASS", "equivalent: 4 vectors x 4 cycles", "seed 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("verify output missing %q:\n%s", want, out)
		}
	}
}

func TestRunVerifySeeded(t *testing.T) {
	var sb strings.Builder
	o := options{benchName: "counter", allocator: "daa", verify: true, cosimSeed: 42}
	if err := run(&sb, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "seed 42") {
		t.Errorf("verify output does not echo the seed:\n%s", sb.String())
	}
}

func TestEmitVerilogFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gcd.v")
	var sb strings.Builder
	if err := run(&sb, options{benchName: "gcd", allocator: "daa", emitVerilog: path}); err != nil {
		t.Fatal(err)
	}
	emitted, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(emitted), "module") {
		t.Errorf("emitted file carries no Verilog:\n%.200s", emitted)
	}
	// -verilog streams the same emit-stage bytes.
	var vl strings.Builder
	if err := run(&vl, options{benchName: "gcd", allocator: "daa", verilog: true}); err != nil {
		t.Fatal(err)
	}
	if vl.String() != string(emitted) {
		t.Error("-verilog output differs from the -emit-verilog file")
	}
}

func TestRemoteVerifyMatchesLocal(t *testing.T) {
	ts := newDaemon(t)
	var local, remote strings.Builder
	if err := run(&local, options{benchName: "gcd", allocator: "daa", verify: true}); err != nil {
		t.Fatal(err)
	}
	o := options{benchName: "gcd", allocator: "daa", verify: true, remote: ts.URL}
	if err := run(&remote, o); err != nil {
		t.Fatal(err)
	}
	// The verdict block is rebuilt from the wire verdict; it must render
	// byte-identically to the local run's block.
	i := strings.Index(local.String(), "equivalence:")
	if i < 0 {
		t.Fatalf("local verify output carries no verdict:\n%s", local.String())
	}
	if !strings.HasSuffix(strings.TrimRight(remote.String(), "\n"), strings.TrimRight(local.String()[i:], "\n")) {
		t.Errorf("remote verdict differs from local:\n--- local ---\n%s\n--- remote ---\n%s",
			local.String()[i:], remote.String())
	}
}

func TestRemoteEmitVerilogFile(t *testing.T) {
	ts := newDaemon(t)
	path := filepath.Join(t.TempDir(), "gcd.v")
	var sb strings.Builder
	o := options{benchName: "gcd", allocator: "daa", emitVerilog: path, remote: ts.URL}
	if err := run(&sb, o); err != nil {
		t.Fatal(err)
	}
	emitted, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var vl strings.Builder
	if err := run(&vl, options{benchName: "gcd", allocator: "daa", verilog: true}); err != nil {
		t.Fatal(err)
	}
	if vl.String() != string(emitted) {
		t.Error("remote -emit-verilog file differs from local -verilog output")
	}
}
