package main

// Design-space exploration: -explore sweeps a knob grid around the
// flag-selected base options and prints the Pareto front. The grid syntax
// is whitespace-separated knob=v1,v2 terms with integer ranges
// ("memports=1..4", "maxops=0..8:2"); -knobs lists every knob with its
// domain and default. Local and -remote sweeps render through the same
// serve.RenderFront table — and with -json, the local output is
// byte-identical to the daemon's POST /v1/explore response body.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/flow"
	"repro/internal/serve"
)

// runKnobs lists the knob space: name, kind, default, domain, doc.
func runKnobs(w io.Writer) error {
	fmt.Fprintln(w, "synthesis knobs (grid axes for -explore, one point per value combination):")
	for _, k := range flow.KnobSpace() {
		domain := ""
		if len(k.Domain) > 0 {
			domain = " ∈ {" + strings.Join(k.Domain, ", ") + "}"
		}
		fmt.Fprintf(w, "\n  %s (%s, default %s)%s\n    %s\n", k.Name, k.Kind, k.Default, domain, k.Doc)
	}
	return nil
}

// runExplore evaluates the grid locally and renders the front.
func runExplore(w io.Writer, in flow.Input, o options) error {
	grid, err := flow.ParseGridSpec(o.exploreSpec)
	if err != nil {
		return flow.Usagef("%v", err)
	}
	base, err := exploreBase(o)
	if err != nil {
		return err
	}
	front, err := flow.Explore(context.Background(), in, base, grid)
	if err != nil {
		return err
	}
	return renderExplore(w, serve.NewExploreResponse(front), o.exploreJSON)
}

// exploreBase builds the base option point the grid perturbs from the
// non-swept flags. Live-state flags (-trace, -journal) and matcher-path
// flags that never change results (-lite, -parallel-match) stay out of the
// base so local fronts match remote ones.
func exploreBase(o options) (flow.Options, error) {
	if o.trace || o.journal != "" || o.explain != "" {
		return flow.Options{}, flow.Usagef("-trace, -journal, and -explain are per-run outputs; not supported with -explore")
	}
	base := flow.Options{Allocator: o.allocator}
	base.Core.DisableCleanup = o.noCleanup
	base.Core.ExhaustiveMatch = o.exhaustive
	base.Core.LiteMatch = o.lite
	base.Core.ParallelMatch = o.parallel
	switch o.allocator {
	case flow.AllocDAA, flow.AllocLeftEdge, flow.AllocNaive:
	default:
		return flow.Options{}, flow.Usagef("unknown allocator %q (want daa, leftedge, or naive)", o.allocator)
	}
	return base, nil
}

// renderExplore writes the front as the shared table or as the daemon's
// JSON body (byte-identical to POST /v1/explore).
func renderExplore(w io.Writer, resp *serve.ExploreResponse, asJSON bool) error {
	if asJSON {
		body, err := json.MarshalIndent(resp, "", "  ")
		if err != nil {
			return err
		}
		_, err = w.Write(append(body, '\n'))
		return err
	}
	serve.RenderFront(w, resp)
	if resp.Evaluated == 0 && resp.Failed > 0 {
		return fmt.Errorf("every grid point failed; see the table above")
	}
	return nil
}

// runRemoteExplore sends the sweep to a daad daemon (or cluster
// coordinator) and renders the same table/JSON as a local run.
func runRemoteExplore(w io.Writer, in flow.Input, o options) error {
	grid, err := flow.ParseGridSpec(o.exploreSpec)
	if err != nil {
		return flow.Usagef("%v", err)
	}
	if _, err := exploreBase(o); err != nil {
		return err // same flag validation as local sweeps
	}
	wireGrid := make(map[string]serve.GridAxis, len(grid))
	for _, ax := range grid {
		wireGrid[ax.Name] = serve.GridAxis(ax.Values)
	}
	req := serve.ExploreRequest{
		Name:   in.Name,
		Source: in.Source,
		Grid:   wireGrid,
		Options: serve.RequestOptions{
			Allocator:  o.allocator,
			NoCleanup:  o.noCleanup,
			Exhaustive: o.exhaustive,
		},
	}
	resp, err := postExplore(o.remote, req)
	if err != nil {
		return err
	}
	return renderExplore(w, resp, o.exploreJSON)
}

// postExplore sends one sweep to the daemon, mapping error bodies onto the
// local taxonomy like postSynthesize.
func postExplore(base string, req serve.ExploreRequest) (*serve.ExploreResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	endpoint := strings.TrimRight(base, "/") + "/v1/explore"
	httpResp, err := doIdempotent(func() (*http.Request, error) {
		hr, err := http.NewRequest(http.MethodPost, endpoint, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		hr.Header.Set("Content-Type", "application/json")
		return hr, nil
	})
	if err != nil {
		return nil, fmt.Errorf("remote %s: %w", base, err)
	}
	defer httpResp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(httpResp.Body, 64<<20))
	if err != nil {
		return nil, fmt.Errorf("remote %s: reading response: %w", base, err)
	}
	if httpResp.StatusCode != http.StatusOK {
		var er serve.ErrorResponse
		if json.Unmarshal(raw, &er) == nil && er.Error != "" {
			return nil, fmt.Errorf("remote %s: %s (%s)", base, er.Error, er.Kind)
		}
		return nil, fmt.Errorf("remote %s: HTTP %d", base, httpResp.StatusCode)
	}
	var out serve.ExploreResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, fmt.Errorf("remote %s: malformed response: %w", base, err)
	}
	return &out, nil
}
