// Command daa synthesizes a register-transfer design from an ISPS
// behavioral description, reproducing the flow of the VLSI Design
// Automation Assistant (Kowalski & Thomas, DAC 1983).
//
// Usage:
//
//	daa -in design.isps                 synthesize a file with the DAA
//	daa -bench mcs6502                  synthesize an embedded benchmark
//	daa -bench gcd -allocator leftedge  use a baseline allocator
//	daa -bench gcd -trace               print every rule firing
//	daa -bench gcd -control             print the derived control table
//	daa -bench gcd -verilog             emit the datapath as Verilog
//	daa -bench gcd -flow                emit the controller graph as DOT
//	daa -bench gcd -no-cleanup          skip the global-improvement phase
//	daa -bench gcd -engine-stats        print the production-engine metrics
//	daa -bench gcd -exhaustive          disable incremental matching
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/alloc"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/isps"
	"repro/internal/rtl"
	"repro/internal/vt"
)

// options collects the command-line configuration of one daa invocation.
type options struct {
	inFile      string
	benchName   string
	list        bool
	allocator   string
	trace       bool
	noCleanup   bool
	stats       bool
	engineStats bool
	exhaustive  bool
	control     bool
	verilog     bool
	flow        bool
}

func main() {
	var o options
	flag.StringVar(&o.inFile, "in", "", "ISPS source file to synthesize")
	flag.StringVar(&o.benchName, "bench", "", "embedded benchmark to synthesize (see -list)")
	flag.BoolVar(&o.list, "list", false, "list embedded benchmarks and exit")
	flag.StringVar(&o.allocator, "allocator", "daa", "allocator: daa, leftedge, or naive")
	flag.BoolVar(&o.trace, "trace", false, "print every rule firing (daa only)")
	flag.BoolVar(&o.noCleanup, "no-cleanup", false, "skip the global-improvement phase (daa only)")
	flag.BoolVar(&o.stats, "stats", true, "print synthesis statistics (daa only)")
	flag.BoolVar(&o.engineStats, "engine-stats", false, "print production-engine metrics: per-rule match cost, conflict-set statistics (daa only)")
	flag.BoolVar(&o.exhaustive, "exhaustive", false, "disable incremental conflict-set maintenance (daa only; for comparison)")
	flag.BoolVar(&o.control, "control", false, "print the derived control-signal table")
	flag.BoolVar(&o.verilog, "verilog", false, "emit the datapath as structural Verilog and exit")
	flag.BoolVar(&o.flow, "flow", false, "emit the controller state graph as Graphviz and exit")
	flag.Parse()
	if err := run(os.Stdout, o); err != nil {
		fmt.Fprintln(os.Stderr, "daa:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, o options) error {
	if o.list {
		for _, n := range bench.Names() {
			fmt.Fprintln(w, n)
		}
		return nil
	}
	tr, err := loadTrace(o.inFile, o.benchName)
	if err != nil {
		return err
	}
	if o.verilog || o.flow {
		o.stats = false // machine-readable outputs suppress the report
	} else {
		fmt.Fprintf(w, "value trace: %s\n\n", tr.Stats())
	}

	var design *rtl.Design
	switch o.allocator {
	case "daa":
		opt := core.Options{DisableCleanup: o.noCleanup, ExhaustiveMatch: o.exhaustive}
		if o.trace {
			opt.Trace = w
		}
		res, err := core.Synthesize(tr, opt)
		if err != nil {
			return err
		}
		design = res.Design
		if o.stats {
			fmt.Fprintln(w, "synthesis statistics:")
			for _, ph := range res.Stats.Phases {
				fmt.Fprintf(w, "  %-12s rules=%-3d firings=%-5d wm-peak=%-5d matches=%-8d %v\n",
					ph.Name, ph.Rules, ph.Firings, ph.WMPeak, ph.Engine.MatchCalls, ph.Elapsed.Round(1000*1000))
			}
			fmt.Fprintf(w, "  total firings %d in %v (%.0f/sec), %d pattern tests\n\n",
				res.Stats.TotalFirings, res.Stats.Elapsed.Round(1000*1000),
				res.Stats.FiringsPerSecond(), res.Stats.TotalMatchCalls)
		}
		if o.engineStats {
			writeEngineStats(w, res.Stats, o.exhaustive)
		}
	case "leftedge":
		design, err = alloc.LeftEdge(tr, alloc.Options{})
		if err != nil {
			return err
		}
	case "naive":
		design, err = alloc.Naive(tr, alloc.Options{})
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown allocator %q (want daa, leftedge, or naive)", o.allocator)
	}

	if o.verilog {
		var sb strings.Builder
		if err := design.WriteVerilog(&sb, design.Name); err != nil {
			return err
		}
		fmt.Fprint(w, sb.String())
		return nil
	}
	if o.flow {
		return design.WriteControlFlowDot(w)
	}

	fmt.Fprint(w, design.Report())
	if cs, err := design.ControlStats(); err == nil {
		fmt.Fprintf(w, "  controller: %d states, %d control assertions (widest step %d)\n",
			cs.States, cs.Signals, cs.MaxSignals)
	}
	fmt.Fprintf(w, "\ngate equivalents: %v\n", cost.Default().Design(design))
	if o.control {
		fmt.Fprintln(w, "\ncontrol table:")
		var sb strings.Builder
		if err := design.WriteControlTable(&sb); err != nil {
			return err
		}
		fmt.Fprint(w, sb.String())
	}
	return nil
}

// writeEngineStats prints the production-engine observability section: the
// matcher's cost per phase and the most expensive rules to match.
func writeEngineStats(w io.Writer, stats core.Stats, exhaustive bool) {
	if exhaustive {
		fmt.Fprintln(w, "engine statistics (exhaustive matcher; incremental counters inactive):")
	} else {
		fmt.Fprintln(w, "engine statistics (incremental matcher):")
	}
	for _, ph := range stats.Phases {
		m := ph.Engine
		fmt.Fprintf(w, "  %-12s deltas=%-6d rebuilds=%-4d added=%-6d invalidated=%-6d cs-peak=%-5d cs-mean=%.1f\n",
			ph.Name, m.Deltas, m.Rebuilds, m.Added, m.Invalidated, m.ConflictPeak, m.ConflictMean)
	}
	agg := stats.EngineMetrics()
	fmt.Fprintln(w, "  top rules by match time:")
	for _, r := range agg.TopRulesByMatchTime(10) {
		fmt.Fprintf(w, "    %-40s %-12s firings=%-5d deltas=%-6d matches=%-8d %v\n",
			r.Name, r.Category, r.Firings, r.Deltas, r.MatchCalls, r.MatchTime.Round(1000))
	}
	fmt.Fprintln(w)
}

func loadTrace(inFile, benchName string) (*vt.Program, error) {
	switch {
	case inFile != "" && benchName != "":
		return nil, fmt.Errorf("use either -in or -bench, not both")
	case benchName != "":
		return bench.Load(benchName)
	case inFile != "":
		src, err := os.ReadFile(inFile)
		if err != nil {
			return nil, err
		}
		prog, err := isps.Parse(inFile, string(src))
		if err != nil {
			return nil, err
		}
		return vt.Build(prog)
	default:
		return nil, fmt.Errorf("nothing to synthesize: pass -in file.isps or -bench name (see -list)")
	}
}
