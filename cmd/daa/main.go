// Command daa synthesizes a register-transfer design from an ISPS
// behavioral description, reproducing the flow of the VLSI Design
// Automation Assistant (Kowalski & Thomas, DAC 1983).
//
// Usage:
//
//	daa -in design.isps                 synthesize a file with the DAA
//	daa -bench mcs6502                  synthesize an embedded benchmark
//	daa -bench gcd -allocator leftedge  use a baseline allocator
//	daa -bench gcd -trace               print every rule firing
//	daa -bench gcd -control             print the derived control table
//	daa -bench gcd -verilog             emit the datapath as Verilog
//	daa -bench gcd -flow                emit the controller graph as DOT
//	daa -bench gcd -no-cleanup          skip the global-improvement phase
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/alloc"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/isps"
	"repro/internal/rtl"
	"repro/internal/vt"
)

func main() {
	var (
		inFile    = flag.String("in", "", "ISPS source file to synthesize")
		benchName = flag.String("bench", "", "embedded benchmark to synthesize (see -list)")
		list      = flag.Bool("list", false, "list embedded benchmarks and exit")
		allocator = flag.String("allocator", "daa", "allocator: daa, leftedge, or naive")
		traceRun  = flag.Bool("trace", false, "print every rule firing (daa only)")
		noCleanup = flag.Bool("no-cleanup", false, "skip the global-improvement phase (daa only)")
		stats     = flag.Bool("stats", true, "print synthesis statistics (daa only)")
		control   = flag.Bool("control", false, "print the derived control-signal table")
		verilog   = flag.Bool("verilog", false, "emit the datapath as structural Verilog and exit")
		flow      = flag.Bool("flow", false, "emit the controller state graph as Graphviz and exit")
	)
	flag.Parse()
	if err := run(*inFile, *benchName, *list, *allocator, *traceRun, *noCleanup, *stats, *control, *verilog, *flow); err != nil {
		fmt.Fprintln(os.Stderr, "daa:", err)
		os.Exit(1)
	}
}

func run(inFile, benchName string, list bool, allocator string, traceRun, noCleanup, stats, control, verilog, flow bool) error {
	if list {
		for _, n := range bench.Names() {
			fmt.Println(n)
		}
		return nil
	}
	tr, err := loadTrace(inFile, benchName)
	if err != nil {
		return err
	}
	if verilog || flow {
		stats = false // machine-readable outputs suppress the report
	} else {
		fmt.Printf("value trace: %s\n\n", tr.Stats())
	}

	var design *rtl.Design
	switch allocator {
	case "daa":
		opt := core.Options{DisableCleanup: noCleanup}
		if traceRun {
			opt.Trace = os.Stdout
		}
		res, err := core.Synthesize(tr, opt)
		if err != nil {
			return err
		}
		design = res.Design
		if stats {
			fmt.Println("synthesis statistics:")
			for _, ph := range res.Stats.Phases {
				fmt.Printf("  %-12s rules=%-3d firings=%-5d wm-peak=%-5d %v\n",
					ph.Name, ph.Rules, ph.Firings, ph.WMPeak, ph.Elapsed.Round(1000*1000))
			}
			fmt.Printf("  total firings %d in %v (%.0f/sec)\n\n",
				res.Stats.TotalFirings, res.Stats.Elapsed.Round(1000*1000), res.Stats.FiringsPerSecond())
		}
	case "leftedge":
		design, err = alloc.LeftEdge(tr, alloc.Options{})
		if err != nil {
			return err
		}
	case "naive":
		design, err = alloc.Naive(tr, alloc.Options{})
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown allocator %q (want daa, leftedge, or naive)", allocator)
	}

	if verilog {
		var sb strings.Builder
		if err := design.WriteVerilog(&sb, design.Name); err != nil {
			return err
		}
		fmt.Print(sb.String())
		return nil
	}
	if flow {
		return design.WriteControlFlowDot(os.Stdout)
	}

	fmt.Print(design.Report())
	if cs, err := design.ControlStats(); err == nil {
		fmt.Printf("  controller: %d states, %d control assertions (widest step %d)\n",
			cs.States, cs.Signals, cs.MaxSignals)
	}
	fmt.Printf("\ngate equivalents: %v\n", cost.Default().Design(design))
	if control {
		fmt.Println("\ncontrol table:")
		var sb strings.Builder
		if err := design.WriteControlTable(&sb); err != nil {
			return err
		}
		fmt.Print(sb.String())
	}
	return nil
}

func loadTrace(inFile, benchName string) (*vt.Program, error) {
	switch {
	case inFile != "" && benchName != "":
		return nil, fmt.Errorf("use either -in or -bench, not both")
	case benchName != "":
		return bench.Load(benchName)
	case inFile != "":
		src, err := os.ReadFile(inFile)
		if err != nil {
			return nil, err
		}
		prog, err := isps.Parse(inFile, string(src))
		if err != nil {
			return nil, err
		}
		return vt.Build(prog)
	default:
		return nil, fmt.Errorf("nothing to synthesize: pass -in file.isps or -bench name (see -list)")
	}
}
