// Command daa synthesizes a register-transfer design from an ISPS
// behavioral description, reproducing the flow of the VLSI Design
// Automation Assistant (Kowalski & Thomas, DAC 1983).
//
// Usage:
//
//	daa -in design.isps                 synthesize a file with the DAA
//	daa -bench mcs6502                  synthesize an embedded benchmark
//	daa -bench gcd -allocator leftedge  use a baseline allocator
//	daa -bench gcd -trace               print every rule firing
//	daa -bench gcd -control             print the derived control table
//	daa -bench gcd -verilog             emit the datapath as Verilog
//	daa -bench gcd -verify              co-simulate behavioral vs RTL, report equivalence
//	daa -bench gcd -emit-verilog f.v    write the emitted Verilog artifact to a file
//	daa -bench gcd -flow                emit the controller graph as DOT
//	daa -bench gcd -no-cleanup          skip the global-improvement phase
//	daa -bench gcd -engine-stats        print the production-engine metrics
//	daa -bench gcd -exhaustive          disable incremental matching
//	daa -bench gcd -lite                use the interpreted Rete-lite matcher
//	daa -bench gcd -parallel-match 4    shard beta propagation across workers
//	daa -bench gcd -stage-timing        print per-stage pipeline wall time
//	daa -bench gcd -explore 'allocator=daa,leftedge cleanup=true,false'
//	                                    sweep a knob grid, print the Pareto front
//	daa -knobs                          list the synthesis knob space
//	daa -bench gcd -explain "reg X"     why does this component exist?
//	daa -bench gcd -journal run.jnl     record the effect journal to a file
//	daa -lint-rules                     statically lint the embedded rule base, exit 2 on findings
//
// Input problems (unparsable or ill-typed ISPS) are reported with
// file:line:col positions and a caret under the offending column, and exit
// with status 2; usage mistakes exit 1; internal failures exit 3.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/isps"
	"repro/internal/serve"
)

// options collects the command-line configuration of one daa invocation.
type options struct {
	inFile      string
	benchName   string
	list        bool
	allocator   string
	trace       bool
	noCleanup   bool
	stats       bool
	engineStats bool
	exhaustive  bool
	lite        bool
	parallel    int
	control     bool
	verilog     bool
	verify      bool
	emitVerilog string
	cosimSeed   uint64
	flow        bool
	stageTiming bool
	explain     string
	journal     string
	remote      string
	deadline    time.Duration
	lintRules   bool
	exploreSpec string
	exploreJSON bool
	knobs       bool
}

func main() {
	var o options
	flag.StringVar(&o.inFile, "in", "", "ISPS source file to synthesize")
	flag.StringVar(&o.benchName, "bench", "", "embedded benchmark to synthesize (see -list)")
	flag.BoolVar(&o.list, "list", false, "list embedded benchmarks and exit")
	flag.StringVar(&o.allocator, "allocator", "daa", "allocator: daa, leftedge, or naive")
	flag.BoolVar(&o.trace, "trace", false, "print every rule firing (daa only)")
	flag.BoolVar(&o.noCleanup, "no-cleanup", false, "skip the global-improvement phase (daa only)")
	flag.BoolVar(&o.stats, "stats", true, "print synthesis statistics (daa only)")
	flag.BoolVar(&o.engineStats, "engine-stats", false, "print production-engine metrics: per-rule match cost, conflict-set statistics (daa only)")
	flag.BoolVar(&o.exhaustive, "exhaustive", false, "disable incremental conflict-set maintenance (daa only; for comparison)")
	flag.BoolVar(&o.lite, "lite", false, "use the interpreted Rete-lite matcher instead of the compiled network (daa only; for comparison)")
	flag.IntVar(&o.parallel, "parallel-match", 0, "shard Rete beta propagation across this many workers (0 = serial)")
	flag.BoolVar(&o.control, "control", false, "print the derived control-signal table")
	flag.BoolVar(&o.verilog, "verilog", false, "emit the datapath as structural Verilog and exit")
	flag.BoolVar(&o.verify, "verify", false, "co-simulate the behavioral description against the synthesized design and report an equivalence verdict (a mismatch exits 3)")
	flag.StringVar(&o.emitVerilog, "emit-verilog", "", "write the emit stage's Verilog to this file, alongside the report")
	flag.Uint64Var(&o.cosimSeed, "cosim-seed", 0, "stimulus seed for -verify (0 = default)")
	flag.BoolVar(&o.flow, "flow", false, "emit the controller state graph as Graphviz and exit")
	flag.BoolVar(&o.stageTiming, "stage-timing", false, "print wall time per pipeline stage")
	flag.StringVar(&o.explain, "explain", "", "explain components whose label contains this selector (\"all\" for every component); prints their rule-firing provenance instead of the report")
	flag.StringVar(&o.journal, "journal", "", "write the effect journal of the run to this file as text")
	flag.BoolVar(&o.lintRules, "lint-rules", false, "statically lint the embedded knowledge base against the working-memory schemas and exit (findings exit 2)")
	flag.StringVar(&o.remote, "remote", "", "synthesize via a daad daemon at this base URL (e.g. http://localhost:8547)")
	flag.DurationVar(&o.deadline, "deadline", 0, "per-request synthesis deadline (remote mode; 0 = server default)")
	flag.StringVar(&o.exploreSpec, "explore", "", "sweep a knob grid and print the Pareto front, e.g. 'allocator=daa,leftedge scheduler=list,asap' (see -knobs; works with -remote)")
	flag.BoolVar(&o.exploreJSON, "json", false, "with -explore, print the daemon-identical JSON body instead of the table")
	flag.BoolVar(&o.knobs, "knobs", false, "list the synthesis knob space (grid axes for -explore) and exit")
	flag.Parse()
	if err := run(os.Stdout, o); err != nil {
		flow.WriteError(os.Stderr, "daa", err)
		os.Exit(flow.ExitCode(err))
	}
}

func run(w io.Writer, o options) error {
	if o.list {
		for _, n := range bench.Names() {
			fmt.Fprintln(w, n)
		}
		return nil
	}
	if o.lintRules {
		return runLintRules(w)
	}
	if o.knobs {
		return runKnobs(w)
	}
	in, err := input(o.inFile, o.benchName)
	if err != nil {
		return err
	}
	if o.exploreSpec != "" {
		if o.remote != "" {
			return runRemoteExplore(w, in, o)
		}
		return runExplore(w, in, o)
	}
	if o.remote != "" {
		return runRemote(w, in, o)
	}
	opt := flow.Options{
		Allocator: o.allocator,
		Core: core.Options{
			DisableCleanup:  o.noCleanup,
			ExhaustiveMatch: o.exhaustive,
			LiteMatch:       o.lite,
			ParallelMatch:   o.parallel,
			Journal:         o.explain != "" || o.journal != "",
		},
		EmitVerilog: o.verilog || o.emitVerilog != "",
		Cosim:       o.verify,
		CosimSeed:   o.cosimSeed,
	}
	switch o.allocator {
	case flow.AllocDAA, flow.AllocLeftEdge, flow.AllocNaive:
	default:
		return flow.Usagef("unknown allocator %q (want daa, leftedge, or naive)", o.allocator)
	}
	// Machine-readable outputs suppress the report; -explain replaces it
	// with the provenance listing.
	machine := o.verilog || o.flow || o.explain != ""
	if o.trace && !machine {
		opt.Core.Trace = w
	}
	ctx := context.Background()
	if !machine {
		// Report the description as loaded, before the DAA's trace rules
		// refine it in place. Front hits the same artifact cache Compile
		// uses, so this costs one clone.
		tr, err := flow.FrontEnd(ctx, in)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "value trace: %s\n\n", tr.Stats())
	}

	res, err := flow.Compile(ctx, in, opt)
	if err != nil {
		return err
	}
	if res.Synth != nil && !machine {
		if o.stats {
			writeStats(w, res.Synth.Stats)
		}
		if o.engineStats {
			writeEngineStats(w, res.Synth.Stats, o.exhaustive, o.lite)
		}
	}

	if o.journal != "" {
		if err := writeJournal(o.journal, res); err != nil {
			return err
		}
	}
	if o.emitVerilog != "" {
		if err := os.WriteFile(o.emitVerilog, []byte(res.Verilog), 0o644); err != nil {
			return err
		}
	}
	if o.explain != "" {
		if err := writeExplain(w, res, o.explain); err != nil {
			return err
		}
		return cosimVerdict(w, res.Cosim, true)
	}

	if o.verilog {
		fmt.Fprint(w, res.Verilog) // rendered by the pipeline's emit stage
		return cosimVerdict(w, res.Cosim, true)
	}
	if o.flow {
		if err := res.Design.WriteControlFlowDot(w); err != nil {
			return err
		}
		return cosimVerdict(w, res.Cosim, true)
	}

	// The deterministic report block is shared with the daemon
	// (internal/serve), so daad responses stay byte-identical to local runs.
	fmt.Fprint(w, serve.RenderReport(res))
	if o.stageTiming {
		fmt.Fprintln(w)
		res.Trace.Write(w)
	}
	if o.control {
		fmt.Fprintln(w, "\ncontrol table:")
		var sb strings.Builder
		if err := res.Design.WriteControlTable(&sb); err != nil {
			return err
		}
		fmt.Fprint(w, sb.String())
	}
	return cosimVerdict(w, res.Cosim, false)
}

// runLintRules statically lints the embedded knowledge base (every phase's
// rules against that phase's working-memory schema) and reports findings
// as positioned diagnostics: exit 0 and a one-line summary when clean,
// exit 2 with one diagnostic per finding otherwise. CI runs this under
// -race next to the analyzer suite.
func runLintRules(w io.Writer) error {
	findings := core.LintKnowledgeBase()
	if len(findings) == 0 {
		total := 0
		for _, rules := range core.KnowledgeBase() {
			total += len(rules)
		}
		fmt.Fprintf(w, "rule base clean: %d rules across %d phases, 0 findings\n", total, len(core.PhaseOrder))
		return nil
	}
	var dl flow.DiagnosticList
	for _, f := range findings {
		dl = append(dl, &flow.Diagnostic{
			Stage: "lint-rules",
			Pos:   isps.Pos{File: f.Phase},
			Msg:   f.Finding.String(),
		})
	}
	return dl
}

// cosimVerdict prints the equivalence block of a -verify run (suppressed
// in machine-output modes, where the stream must stay pure) and turns a
// mismatch into an internal-failure exit: a design that disagrees with its
// own behavioral description must not pass silently.
func cosimVerdict(w io.Writer, rep *flow.CosimReport, machine bool) error {
	if rep == nil {
		return nil
	}
	if !machine {
		fmt.Fprintln(w)
		rep.Write(w)
	}
	if !rep.Equivalent {
		return fmt.Errorf("cosimulation mismatch: %s", rep.Summary())
	}
	return nil
}

// input resolves the -in/-bench flags to a compilation unit. Flag misuse
// is a usage error (exit 1); an unreadable file is an input problem
// (exit 2).
func input(inFile, benchName string) (flow.Input, error) {
	switch {
	case inFile != "" && benchName != "":
		return flow.Input{}, flow.Usagef("use either -in or -bench, not both")
	case benchName != "":
		in, err := bench.Input(benchName)
		if err != nil {
			return flow.Input{}, flow.Usagef("%v", err)
		}
		return in, nil
	case inFile != "":
		return flow.FileInput(inFile)
	default:
		return flow.Input{}, flow.Usagef("nothing to synthesize: pass -in file.isps or -bench name (see -list)")
	}
}

// writeExplain prints the rule-firing provenance of every component whose
// label matches sel, through the same core renderer the daemon's
// GET /v1/explain uses — the listing text is identical in both modes.
func writeExplain(w io.Writer, res *flow.Result, sel string) error {
	var sb strings.Builder
	n := res.Provenance().Explain(&sb, sel)
	writeExplainHeader(w, res.Design.Name, sel, n)
	fmt.Fprint(w, sb.String())
	return nil
}

// writeExplainHeader prints the one-line summary above an explain listing;
// local and remote explain share it.
func writeExplainHeader(w io.Writer, design, sel string, matched int) {
	fmt.Fprintf(w, "provenance of %s: %d component(s) match %q\n\n", design, matched, sel)
}

// writeJournal records the run's effect journal to a file in the prod
// text format.
func writeJournal(path string, res *flow.Result) error {
	var b strings.Builder
	res.Journal().WriteText(&b)
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// writeStats prints the per-phase synthesis statistics.
func writeStats(w io.Writer, stats core.Stats) {
	fmt.Fprintln(w, "synthesis statistics:")
	for _, ph := range stats.Phases {
		fmt.Fprintf(w, "  %-12s rules=%-3d firings=%-5d wm-peak=%-5d matches=%-8d %v\n",
			ph.Name, ph.Rules, ph.Firings, ph.WMPeak, ph.Engine.MatchCalls, ph.Elapsed.Round(1000*1000))
	}
	fmt.Fprintf(w, "  total firings %d in %v (%.0f/sec), %d pattern tests\n\n",
		stats.TotalFirings, stats.Elapsed.Round(1000*1000),
		stats.FiringsPerSecond(), stats.TotalMatchCalls)
}

// writeEngineStats prints the production-engine observability section: the
// matcher's cost per phase, the match network's shape and activity, and the
// most expensive rules to match.
func writeEngineStats(w io.Writer, stats core.Stats, exhaustive, lite bool) {
	switch {
	case exhaustive:
		fmt.Fprintln(w, "engine statistics (exhaustive matcher; incremental counters inactive):")
	case lite:
		fmt.Fprintln(w, "engine statistics (Rete-lite matcher; network counters inactive):")
	default:
		fmt.Fprintln(w, "engine statistics (compiled Rete network):")
	}
	for _, ph := range stats.Phases {
		m := ph.Engine
		fmt.Fprintf(w, "  %-12s deltas=%-6d rebuilds=%-4d added=%-6d invalidated=%-6d cs-peak=%-5d cs-mean=%.1f\n",
			ph.Name, m.Deltas, m.Rebuilds, m.Added, m.Invalidated, m.ConflictPeak, m.ConflictMean)
	}
	agg := stats.EngineMetrics()
	if !exhaustive && !lite {
		fmt.Fprintf(w, "  network: alpha tests=%d mems=%d (patterns=%d) join nodes=%d neg nodes=%d\n",
			agg.AlphaTests, agg.AlphaMems, agg.AlphaPatterns, agg.JoinNodes, agg.NegNodes)
		fmt.Fprintf(w, "  activity: alpha evals=%d join tests=%d tokens +%d -%d (live %d)\n",
			agg.AlphaEvals, agg.JoinTests, agg.TokenAsserts, agg.TokenRetracts, agg.TokensLive)
	}
	fmt.Fprintln(w, "  top rules by match time:")
	for _, r := range agg.TopRulesByMatchTime(10) {
		fmt.Fprintf(w, "    %-40s %-12s firings=%-5d deltas=%-6d matches=%-8d %v\n",
			r.Name, r.Category, r.Firings, r.Deltas, r.MatchCalls, r.MatchTime.Round(1000))
	}
	fmt.Fprintln(w)
}
