package main

// Remote mode: -remote <url> sends the compilation to a daad daemon
// (cmd/daad) instead of synthesizing in-process. The daemon embeds the
// same deterministic report block local runs print (serve.RenderReport),
// so output is identical apart from the local-only value-trace header and
// synthesis statistics; positioned diagnostics come back over the wire
// and render with the same carets and exit codes. -explain rides along:
// the synthesize request asks for provenance and the listing is fetched
// from GET /v1/explain under the key the response returns.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/flow"
	"repro/internal/serve"
)

func runRemote(w io.Writer, in flow.Input, o options) error {
	if o.trace || o.engineStats {
		return flow.Usagef("-trace and -engine-stats stream local engine state and are not supported with -remote")
	}
	if o.journal != "" {
		return flow.Usagef("-journal records the local engine's effect journal and is not supported with -remote")
	}
	req := serve.SynthesizeRequest{
		Name:   in.Name,
		Source: in.Source,
		Options: serve.RequestOptions{
			Allocator:  o.allocator,
			NoCleanup:  o.noCleanup,
			Exhaustive: o.exhaustive,
			Provenance: o.explain != "",
			Verify:     o.verify,
			CosimSeed:  o.cosimSeed,
		},
		Artifacts: serve.ArtifactRequest{
			Verilog:      o.verilog || o.emitVerilog != "",
			ControlTable: o.control,
			Dot:          o.flow,
		},
		Timings:    o.stageTiming,
		DeadlineMS: int(o.deadline / time.Millisecond),
	}
	resp, err := postSynthesize(o.remote, req)
	if err != nil {
		return err
	}
	if o.verify && resp.Equivalence == nil {
		return fmt.Errorf("remote %s: response carries no equivalence verdict (daemon too old?)", o.remote)
	}
	// The wire verdict rebuilds the flow-layer report, so the verdict block
	// below is byte-identical to a local -verify run.
	rep := resp.Equivalence.CosimReport()

	if o.emitVerilog != "" {
		if err := os.WriteFile(o.emitVerilog, []byte(resp.Artifacts.Verilog), 0o644); err != nil {
			return err
		}
	}
	if o.explain != "" {
		if resp.Provenance == nil {
			return fmt.Errorf("remote %s: response carries no provenance key (daemon too old?)", o.remote)
		}
		ex, err := getExplain(o.remote, resp.Provenance.Key, o.explain)
		if err != nil {
			return err
		}
		writeExplainHeader(w, ex.Design, o.explain, ex.Matched)
		fmt.Fprint(w, ex.Text)
		return cosimVerdict(w, rep, true)
	}
	if o.verilog {
		fmt.Fprint(w, resp.Artifacts.Verilog)
		return cosimVerdict(w, rep, true)
	}
	if o.flow {
		fmt.Fprint(w, resp.Artifacts.Dot)
		return cosimVerdict(w, rep, true)
	}
	fmt.Fprint(w, resp.Report)
	if o.stageTiming {
		fmt.Fprintln(w)
		remoteTrace(resp.Stages).Write(w)
	}
	if o.control {
		fmt.Fprintln(w, "\ncontrol table:")
		fmt.Fprint(w, resp.Artifacts.ControlTable)
	}
	return cosimVerdict(w, rep, false)
}

// retryBackoff is the pause before the single retry of an idempotent
// request whose connection failed before any response arrived. Tests
// shorten it.
var retryBackoff = 200 * time.Millisecond

// doIdempotent issues the request built by mk through the shared cluster
// client: one retry after a short backoff when the transport failed
// before the server produced a response, and a 429 with a short
// Retry-After is waited out once. Both daemon calls are safe to repeat:
// synthesize is a cache-keyed pure computation and explain is a GET.
func doIdempotent(mk func() (*http.Request, error)) (*http.Response, error) {
	c := cluster.NewClient(cluster.ClientConfig{
		Attempts:    2,
		BaseBackoff: retryBackoff,
		Honor429:    true,
	})
	return c.Do(context.Background(), mk)
}

// postSynthesize sends one request to the daemon and maps error bodies
// back onto the local error taxonomy (diagnostics exit 2, overload and
// internal failures exit 3).
func postSynthesize(base string, req serve.SynthesizeRequest) (*serve.SynthesizeResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	endpoint := strings.TrimRight(base, "/") + "/v1/synthesize"
	httpResp, err := doIdempotent(func() (*http.Request, error) {
		hr, err := http.NewRequest(http.MethodPost, endpoint, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		hr.Header.Set("Content-Type", "application/json")
		return hr, nil
	})
	if err != nil {
		return nil, fmt.Errorf("remote %s: %w", base, err)
	}
	defer httpResp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(httpResp.Body, 64<<20))
	if err != nil {
		return nil, fmt.Errorf("remote %s: reading response: %w", base, err)
	}
	if httpResp.StatusCode != http.StatusOK {
		var er serve.ErrorResponse
		if json.Unmarshal(raw, &er) == nil && er.Error != "" {
			if er.Kind == serve.KindInput && len(er.Diagnostics) > 0 {
				var dl flow.DiagnosticList
				for _, d := range er.Diagnostics {
					dl = append(dl, d.FlowDiagnostic())
				}
				return nil, dl
			}
			return nil, fmt.Errorf("remote %s: %s (%s)", base, er.Error, er.Kind)
		}
		return nil, fmt.Errorf("remote %s: HTTP %d", base, httpResp.StatusCode)
	}
	var out serve.SynthesizeResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, fmt.Errorf("remote %s: malformed response: %w", base, err)
	}
	if out.Artifacts == nil {
		out.Artifacts = &serve.Artifacts{}
	}
	return &out, nil
}

// getExplain fetches the provenance listing of a journaled design by the
// key the synthesize response returned.
func getExplain(base, key, sel string) (*serve.ExplainResponse, error) {
	endpoint := strings.TrimRight(base, "/") + "/v1/explain?key=" +
		url.QueryEscape(key) + "&sel=" + url.QueryEscape(sel)
	httpResp, err := doIdempotent(func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, endpoint, nil)
	})
	if err != nil {
		return nil, fmt.Errorf("remote %s: %w", base, err)
	}
	defer httpResp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(httpResp.Body, 64<<20))
	if err != nil {
		return nil, fmt.Errorf("remote %s: reading response: %w", base, err)
	}
	if httpResp.StatusCode != http.StatusOK {
		var er serve.ErrorResponse
		if json.Unmarshal(raw, &er) == nil && er.Error != "" {
			return nil, fmt.Errorf("remote %s: %s (%s)", base, er.Error, er.Kind)
		}
		return nil, fmt.Errorf("remote %s: HTTP %d", base, httpResp.StatusCode)
	}
	var out serve.ExplainResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, fmt.Errorf("remote %s: malformed response: %w", base, err)
	}
	return &out, nil
}

// remoteTrace rebuilds a flow.Trace from wire stage timings so remote
// stage-timing output renders through the same table writer.
func remoteTrace(stages []serve.StageTiming) flow.Trace {
	var tr flow.Trace
	for _, s := range stages {
		d := time.Duration(s.ElapsedMS * float64(time.Millisecond))
		tr.Stages = append(tr.Stages, flow.StageInfo{Stage: s.Name, Elapsed: d, Cached: s.Cached, Note: s.Note})
		tr.Total += d
	}
	return tr
}
