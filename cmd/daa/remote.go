package main

// Remote mode: -remote <url> sends the compilation to a daad daemon
// (cmd/daad) instead of synthesizing in-process. The daemon embeds the
// same deterministic report block local runs print (serve.RenderReport),
// so output is identical apart from the local-only value-trace header and
// synthesis statistics; positioned diagnostics come back over the wire
// and render with the same carets and exit codes.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/flow"
	"repro/internal/serve"
)

func runRemote(w io.Writer, in flow.Input, o options) error {
	if o.trace || o.engineStats {
		return flow.Usagef("-trace and -engine-stats stream local engine state and are not supported with -remote")
	}
	req := serve.SynthesizeRequest{
		Name:   in.Name,
		Source: in.Source,
		Options: serve.RequestOptions{
			Allocator:  o.allocator,
			NoCleanup:  o.noCleanup,
			Exhaustive: o.exhaustive,
		},
		Artifacts: serve.ArtifactRequest{
			Verilog:      o.verilog,
			ControlTable: o.control,
			Dot:          o.flow,
		},
		Timings:    o.stageTiming,
		DeadlineMS: int(o.deadline / time.Millisecond),
	}
	resp, err := postSynthesize(o.remote, req)
	if err != nil {
		return err
	}

	if o.verilog {
		fmt.Fprint(w, resp.Artifacts.Verilog)
		return nil
	}
	if o.flow {
		fmt.Fprint(w, resp.Artifacts.Dot)
		return nil
	}
	fmt.Fprint(w, resp.Report)
	if o.stageTiming {
		fmt.Fprintln(w)
		remoteTrace(resp.Stages).Write(w)
	}
	if o.control {
		fmt.Fprintln(w, "\ncontrol table:")
		fmt.Fprint(w, resp.Artifacts.ControlTable)
	}
	return nil
}

// postSynthesize sends one request to the daemon and maps error bodies
// back onto the local error taxonomy (diagnostics exit 2, overload and
// internal failures exit 3).
func postSynthesize(base string, req serve.SynthesizeRequest) (*serve.SynthesizeResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	url := strings.TrimRight(base, "/") + "/v1/synthesize"
	httpResp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("remote %s: %w", base, err)
	}
	defer httpResp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(httpResp.Body, 64<<20))
	if err != nil {
		return nil, fmt.Errorf("remote %s: reading response: %w", base, err)
	}
	if httpResp.StatusCode != http.StatusOK {
		var er serve.ErrorResponse
		if json.Unmarshal(raw, &er) == nil && er.Error != "" {
			if er.Kind == serve.KindInput && len(er.Diagnostics) > 0 {
				var dl flow.DiagnosticList
				for _, d := range er.Diagnostics {
					dl = append(dl, d.FlowDiagnostic())
				}
				return nil, dl
			}
			return nil, fmt.Errorf("remote %s: %s (%s)", base, er.Error, er.Kind)
		}
		return nil, fmt.Errorf("remote %s: HTTP %d", base, httpResp.StatusCode)
	}
	var out serve.SynthesizeResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, fmt.Errorf("remote %s: malformed response: %w", base, err)
	}
	if out.Artifacts == nil {
		out.Artifacts = &serve.Artifacts{}
	}
	return &out, nil
}

// remoteTrace rebuilds a flow.Trace from wire stage timings so remote
// stage-timing output renders through the same table writer.
func remoteTrace(stages []serve.StageTiming) flow.Trace {
	var tr flow.Trace
	for _, s := range stages {
		d := time.Duration(s.ElapsedMS * float64(time.Millisecond))
		tr.Stages = append(tr.Stages, flow.StageInfo{Stage: s.Name, Elapsed: d, Cached: s.Cached, Note: s.Note})
		tr.Total += d
	}
	return tr
}
