package main

// Remote-mode tests drive run() against a real daad handler behind
// httptest: the explain round trip renders identically to a local run, and
// the client's single retry recovers from a connection the server killed
// before answering.

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/flow"
	"repro/internal/serve"
)

// newDaemon starts a daad handler behind httptest.
func newDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(serve.New(serve.Config{}).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestRemoteReportMatchesLocal(t *testing.T) {
	ts := newDaemon(t)
	var local, remote strings.Builder
	if err := run(&local, options{benchName: "gcd", allocator: "daa"}); err != nil {
		t.Fatal(err)
	}
	if err := run(&remote, options{benchName: "gcd", allocator: "daa", remote: ts.URL}); err != nil {
		t.Fatal(err)
	}
	// The report block is shared; the local run additionally prints the
	// value-trace header, which remote mode omits.
	if !strings.Contains(local.String(), remote.String()) {
		t.Errorf("remote report is not embedded in local output:\n--- local ---\n%s\n--- remote ---\n%s",
			local.String(), remote.String())
	}
}

func TestRemoteExplainMatchesLocal(t *testing.T) {
	ts := newDaemon(t)
	var local, remote strings.Builder
	if err := run(&local, options{benchName: "gcd", allocator: "daa", explain: "all"}); err != nil {
		t.Fatal(err)
	}
	if err := run(&remote, options{benchName: "gcd", allocator: "daa", explain: "all", remote: ts.URL}); err != nil {
		t.Fatal(err)
	}
	if local.String() != remote.String() {
		t.Errorf("remote explain differs from local:\n--- local ---\n%s\n--- remote ---\n%s",
			local.String(), remote.String())
	}
}

func TestRemoteJournalIsUsageError(t *testing.T) {
	err := runQuiet(options{benchName: "gcd", allocator: "daa", remote: "http://localhost:1", journal: "x.jnl"})
	if flow.ExitCode(err) != flow.ExitUsage {
		t.Errorf("-journal with -remote: exit %d (%v), want usage", flow.ExitCode(err), err)
	}
}

// TestRemoteRetriesKilledConnection kills the first TCP connection before
// writing any response; the client's single retry must complete the run.
func TestRemoteRetriesKilledConnection(t *testing.T) {
	oldBackoff := retryBackoff
	retryBackoff = time.Millisecond
	defer func() { retryBackoff = oldBackoff }()

	inner := serve.New(serve.Config{}).Handler()
	var killed atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if killed.CompareAndSwap(false, true) {
			conn, _, err := w.(http.Hijacker).Hijack()
			if err != nil {
				t.Errorf("hijack: %v", err)
				return
			}
			conn.Close() // drop the socket with no response bytes
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()

	var sb strings.Builder
	if err := run(&sb, options{benchName: "gcd", allocator: "daa", remote: ts.URL}); err != nil {
		t.Fatalf("run did not survive one killed connection: %v", err)
	}
	if !killed.Load() {
		t.Fatal("test server never killed a connection")
	}
	if !strings.Contains(sb.String(), "control steps:") {
		t.Errorf("retried run produced no report:\n%s", sb.String())
	}
}

// TestRemoteHonorsRetryAfter: a daemon (or coordinator) shedding load
// with 429 + a short Retry-After is waited out and the run completes.
func TestRemoteHonorsRetryAfter(t *testing.T) {
	inner := serve.New(serve.Config{}).Handler()
	var shed atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if shed.CompareAndSwap(false, true) {
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{"error":"queue full","kind":"overload"}`, http.StatusTooManyRequests)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()

	var sb strings.Builder
	if err := run(&sb, options{benchName: "gcd", allocator: "daa", remote: ts.URL}); err != nil {
		t.Fatalf("run did not survive one shed response: %v", err)
	}
	if !shed.Load() {
		t.Fatal("test server never shed a request")
	}
	if !strings.Contains(sb.String(), "control steps:") {
		t.Errorf("retried run produced no report:\n%s", sb.String())
	}
}

// TestRemoteDoesNotRetryHTTPErrors pins the retry scope: a served error
// response (here 404 for an unknown route) is returned, not retried.
func TestRemoteDoesNotRetryHTTPErrors(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "nope", http.StatusNotFound)
	}))
	defer ts.Close()
	if err := runQuiet(options{benchName: "gcd", allocator: "daa", remote: ts.URL}); err == nil {
		t.Fatal("expected an error from the 404 daemon")
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("served error was retried: %d requests, want 1", got)
	}
}
