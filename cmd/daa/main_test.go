package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunListBenchmarks(t *testing.T) {
	if err := run("", "", true, "daa", false, false, false, false, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunEveryAllocator(t *testing.T) {
	for _, a := range []string{"daa", "leftedge", "naive"} {
		if err := run("", "gcd", false, a, false, false, false, false, false, false); err != nil {
			t.Fatalf("%s: %v", a, err)
		}
	}
}

func TestRunWithControlAndTrace(t *testing.T) {
	if err := run("", "counter", false, "daa", true, false, true, true, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunVerilog(t *testing.T) {
	if err := run("", "gcd", false, "daa", false, false, false, false, true, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunNoCleanup(t *testing.T) {
	if err := run("", "gcd", false, "daa", false, true, false, false, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.isps")
	src := "processor X { reg A<7:0> main m { A := A + 1 } }"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, "", false, "daa", false, false, false, false, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct{ in, bench, alloc string }{
		{"", "", "daa"},      // nothing to synthesize
		{"x", "y", "daa"},    // both inputs
		{"", "gcd", "bogus"}, // unknown allocator
		{"", "nope", "daa"},  // unknown benchmark
		{"/no/such.isps", "", "daa"},
	}
	for _, c := range cases {
		if err := run(c.in, c.bench, false, c.alloc, false, false, false, false, false, false); err == nil {
			t.Errorf("run(%q,%q,%q): expected error", c.in, c.bench, c.alloc)
		}
	}
}
