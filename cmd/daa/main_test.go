package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/flow"
)

func runQuiet(o options) error { return run(io.Discard, o) }

func TestRunListBenchmarks(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, options{list: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "mcs6502") {
		t.Errorf("list output missing mcs6502: %q", sb.String())
	}
}

func TestRunEveryAllocator(t *testing.T) {
	for _, a := range []string{"daa", "leftedge", "naive"} {
		if err := runQuiet(options{benchName: "gcd", allocator: a}); err != nil {
			t.Fatalf("%s: %v", a, err)
		}
	}
}

func TestRunWithControlAndTrace(t *testing.T) {
	o := options{benchName: "counter", allocator: "daa", trace: true, stats: true, control: true}
	if err := runQuiet(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunVerilog(t *testing.T) {
	if err := runQuiet(options{benchName: "gcd", allocator: "daa", verilog: true}); err != nil {
		t.Fatal(err)
	}
}

func TestRunNoCleanup(t *testing.T) {
	if err := runQuiet(options{benchName: "gcd", allocator: "daa", noCleanup: true}); err != nil {
		t.Fatal(err)
	}
}

func TestRunEngineStats(t *testing.T) {
	var sb strings.Builder
	o := options{benchName: "gcd", allocator: "daa", stats: true, engineStats: true}
	if err := run(&sb, o); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"engine statistics", "top rules by match time", "cs-peak"} {
		if !strings.Contains(out, want) {
			t.Errorf("engine-stats output missing %q", want)
		}
	}
}

func TestRunExhaustive(t *testing.T) {
	o := options{benchName: "gcd", allocator: "daa", exhaustive: true, stats: true}
	if err := runQuiet(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.isps")
	src := "processor X { reg A<7:0> main m { A := A + 1 } }"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runQuiet(options{inFile: path, allocator: "daa"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct{ in, bench, alloc string }{
		{"", "", "daa"},      // nothing to synthesize
		{"x", "y", "daa"},    // both inputs
		{"", "gcd", "bogus"}, // unknown allocator
		{"", "nope", "daa"},  // unknown benchmark
		{"/no/such.isps", "", "daa"},
	}
	for _, c := range cases {
		if err := runQuiet(options{inFile: c.in, benchName: c.bench, allocator: c.alloc}); err == nil {
			t.Errorf("run(%q,%q,%q): expected error", c.in, c.bench, c.alloc)
		}
	}
}

func TestRunStageTiming(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, options{benchName: "gcd", allocator: "daa", stageTiming: true}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"stage timing:", "parse", "allocate", "total"} {
		if !strings.Contains(out, want) {
			t.Errorf("stage-timing output missing %q:\n%s", want, out)
		}
	}
}

// TestExitCodes pins the CLI convention: 1 for usage mistakes, 2 for input
// problems, 3 for internal failures.
func TestExitCodes(t *testing.T) {
	usage := []options{
		{},                                     // nothing to synthesize
		{inFile: "x", benchName: "y"},          // both inputs
		{benchName: "gcd", allocator: "bogus"}, // unknown allocator
		{benchName: "nope", allocator: "daa"},  // unknown benchmark
	}
	for i, o := range usage {
		if got := flow.ExitCode(runQuiet(o)); got != flow.ExitUsage {
			t.Errorf("case %d: exit %d, want %d (usage)", i, got, flow.ExitUsage)
		}
	}
	if got := flow.ExitCode(runQuiet(options{inFile: "/no/such.isps", allocator: "daa"})); got != flow.ExitDiagnostic {
		t.Errorf("unreadable file: exit %d, want %d", got, flow.ExitDiagnostic)
	}
}

// TestBadSourceGetsCaretDiagnostic compiles an ill-formed file and checks
// the error renders with a position and a caret under the column.
func TestBadSourceGetsCaretDiagnostic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.isps")
	src := "processor X {\n    reg A<7:0>\n    main m {\n        A := NOPE + 1\n    }\n}\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	err := runQuiet(options{inFile: path, allocator: "daa"})
	if err == nil {
		t.Fatal("expected a diagnostic")
	}
	if got := flow.ExitCode(err); got != flow.ExitDiagnostic {
		t.Errorf("exit %d, want %d", got, flow.ExitDiagnostic)
	}
	var sb strings.Builder
	flow.WriteError(&sb, "daa", err)
	out := sb.String()
	if !strings.Contains(out, "bad.isps:4") || !strings.Contains(out, "^") {
		t.Errorf("caret diagnostic missing position:\n%s", out)
	}
}

func TestRunLintRulesClean(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, options{lintRules: true}); err != nil {
		t.Fatalf("lint-rules on the embedded rule base: %v", err)
	}
	if !strings.Contains(sb.String(), "rule base clean: 48 rules across 7 phases") {
		t.Errorf("unexpected lint-rules summary: %q", sb.String())
	}
}
