package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runQuiet(o options) error { return run(io.Discard, o) }

func TestRunListBenchmarks(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, options{list: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "mcs6502") {
		t.Errorf("list output missing mcs6502: %q", sb.String())
	}
}

func TestRunEveryAllocator(t *testing.T) {
	for _, a := range []string{"daa", "leftedge", "naive"} {
		if err := runQuiet(options{benchName: "gcd", allocator: a}); err != nil {
			t.Fatalf("%s: %v", a, err)
		}
	}
}

func TestRunWithControlAndTrace(t *testing.T) {
	o := options{benchName: "counter", allocator: "daa", trace: true, stats: true, control: true}
	if err := runQuiet(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunVerilog(t *testing.T) {
	if err := runQuiet(options{benchName: "gcd", allocator: "daa", verilog: true}); err != nil {
		t.Fatal(err)
	}
}

func TestRunNoCleanup(t *testing.T) {
	if err := runQuiet(options{benchName: "gcd", allocator: "daa", noCleanup: true}); err != nil {
		t.Fatal(err)
	}
}

func TestRunEngineStats(t *testing.T) {
	var sb strings.Builder
	o := options{benchName: "gcd", allocator: "daa", stats: true, engineStats: true}
	if err := run(&sb, o); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"engine statistics", "top rules by match time", "cs-peak"} {
		if !strings.Contains(out, want) {
			t.Errorf("engine-stats output missing %q", want)
		}
	}
}

func TestRunExhaustive(t *testing.T) {
	o := options{benchName: "gcd", allocator: "daa", exhaustive: true, stats: true}
	if err := runQuiet(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.isps")
	src := "processor X { reg A<7:0> main m { A := A + 1 } }"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runQuiet(options{inFile: path, allocator: "daa"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct{ in, bench, alloc string }{
		{"", "", "daa"},      // nothing to synthesize
		{"x", "y", "daa"},    // both inputs
		{"", "gcd", "bogus"}, // unknown allocator
		{"", "nope", "daa"},  // unknown benchmark
		{"/no/such.isps", "", "daa"},
	}
	for _, c := range cases {
		if err := runQuiet(options{inFile: c.in, benchName: c.bench, allocator: c.alloc}); err == nil {
			t.Errorf("run(%q,%q,%q): expected error", c.in, c.bench, c.alloc)
		}
	}
}
