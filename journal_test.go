package repro

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/rtl"
)

// The journal acceptance tests: every embedded benchmark's synthesis
// replays byte-identically from its effect journal, and every final
// component of the paper's subject (the MCS6502) resolves to at least one
// provenance firing.

func renderDesign(t testing.TB, d *rtl.Design) string {
	t.Helper()
	var b strings.Builder
	if err := d.WriteVerilog(&b, "top"); err != nil {
		t.Fatalf("render verilog: %v", err)
	}
	if err := d.WriteControlTable(&b); err != nil {
		t.Fatalf("render control table: %v", err)
	}
	return b.String()
}

func TestJournalReplayAllBenchmarks(t *testing.T) {
	for _, name := range bench.Names() {
		t.Run(name, func(t *testing.T) {
			tr, err := bench.Load(name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.Synthesize(tr, core.Options{Journal: true})
			if err != nil {
				t.Fatalf("synthesize: %v", err)
			}
			fresh, err := bench.Load(name)
			if err != nil {
				t.Fatal(err)
			}
			replayed, err := core.Replay(fresh, res.Journal, core.Options{})
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			want := renderDesign(t, res.Design)
			got := renderDesign(t, replayed)
			if got != want {
				t.Errorf("replayed %s differs from recorded design (%d vs %d bytes)",
					name, len(got), len(want))
			}
		})
	}
}

func TestProvenanceCoversMCS6502(t *testing.T) {
	tr, err := bench.Load("mcs6502")
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Synthesize(tr, core.Options{Journal: true})
	if err != nil {
		t.Fatal(err)
	}
	if un := res.Provenance.Unattributed(); len(un) > 0 {
		t.Fatalf("%d unattributed mcs6502 components, e.g. %v", len(un), un[:min(5, len(un))])
	}
}

func TestFlowCarriesJournal(t *testing.T) {
	in, err := bench.Input("gcd")
	if err != nil {
		t.Fatal(err)
	}
	res, err := flow.Compile(t.Context(), in, flow.Options{Core: core.Options{Journal: true}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Journal() == nil || res.Provenance() == nil {
		t.Fatal("flow.Result did not carry journal/provenance")
	}
	plain, err := flow.Compile(t.Context(), in, flow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Journal() != nil || plain.Provenance() != nil {
		t.Fatal("journal populated without the option")
	}
}

// FuzzJournalReplay compiles arbitrary ISPS, journals the synthesis, and
// asserts the replayed design renders byte-identically. Seeded with the
// nine embedded benchmarks.
func FuzzJournalReplay(f *testing.F) {
	for _, name := range bench.Names() {
		src, err := bench.Source(name)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(src)
	}
	f.Fuzz(func(t *testing.T, src string) {
		in := flow.Input{Name: "fuzz.isps", Source: src}
		res, err := flow.Compile(t.Context(), in, flow.Options{
			Core:    core.Options{Journal: true},
			NoCache: true,
		})
		if err != nil {
			t.Skip() // invalid input: the front end rejected it
		}
		fresh, err := flow.FrontEnd(t.Context(), in)
		if err != nil {
			t.Fatalf("front end accepted then rejected the same source: %v", err)
		}
		replayed, err := core.Replay(fresh, res.Journal(), core.Options{})
		if err != nil {
			t.Fatalf("replay: %v", err)
		}
		want := renderDesign(t, res.Design)
		got := renderDesign(t, replayed)
		if got != want {
			t.Errorf("replayed design differs from recorded design")
		}
	})
}
