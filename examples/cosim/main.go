// Cosim: the verification story. The same 6502 machine-code program runs
// through the behavioral ISPS interpreter and through the register-transfer
// design the DAA synthesized, step by step; the architectural state must
// agree. The example finishes by emitting the synthesized datapath as
// structural Verilog.
//
// One flow.Compile run provides both sides: the analyzed AST (res.AST)
// drives the behavioral interpreter, the synthesized structure
// (res.Design) drives the register-transfer simulator.
//
//	go run ./examples/cosim
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"repro/internal/bench"
	"repro/internal/flow"
	"repro/internal/rtlsim"
	"repro/internal/sim"
)

func main() {
	in, err := bench.Input("mcs6502")
	if err != nil {
		log.Fatal(err)
	}
	res, err := flow.Compile(context.Background(), in, flow.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// A tiny program: sum 1..5 with a compare/branch loop substitute
	// (unrolled adds), then store the total.
	program := []uint64{
		0xA9, 0x00, // LDA #0
		0x18,       // CLC
		0x69, 0x01, // ADC #1
		0x69, 0x02, // ADC #2
		0x69, 0x03, // ADC #3
		0x69, 0x04, // ADC #4
		0x69, 0x05, // ADC #5
		0x85, 0x42, // STA $42
	}
	const cycles = 8

	// Reference: the behavioral ISPS interpreter, on the compile's AST.
	ref := sim.New(res.AST)
	ref.Load("M", 0x0200, program)
	ref.Set("PC", 0x0200)
	ref.Set("S", 0xFF)
	if err := ref.RunN(cycles); err != nil {
		log.Fatal(err)
	}

	// Device under test: the DAA's synthesized design, executed at the
	// control-step level.
	dut, err := rtlsim.New(res.Design)
	if err != nil {
		log.Fatal(err)
	}
	dut.Load("M", 0x0200, program)
	dut.Set("PC", 0x0200)
	dut.Set("S", 0xFF)
	if err := dut.RunN(cycles); err != nil {
		log.Fatal(err)
	}

	fmt.Println("co-simulation of the MCS6502 design vs the behavioral reference:")
	agree := true
	for _, reg := range []string{"A", "X", "Y", "S", "P", "PC"} {
		want, _ := ref.Get(reg)
		got, _ := dut.Get(reg)
		status := "ok"
		if got != want {
			status = "MISMATCH"
			agree = false
		}
		fmt.Printf("  %-3s behavioral=%#04x design=%#04x  %s\n", reg, want, got, status)
	}
	w, _ := ref.Mem("M", 0x42)
	g, _ := dut.Mem("M", 0x42)
	fmt.Printf("  M[$42] behavioral=%d design=%d (1+2+3+4+5 = 15)\n", w, g)
	if !agree || w != g || w != 15 {
		log.Fatal("designs disagree")
	}

	fmt.Println("\nfirst lines of the exported structural Verilog:")
	var sb strings.Builder
	if err := res.Design.WriteVerilog(&sb, "mcs6502_datapath"); err != nil {
		log.Fatal(err)
	}
	lines := strings.SplitN(sb.String(), "\n", 16)
	for _, l := range lines[:15] {
		fmt.Println("  " + l)
	}
	fmt.Printf("  ... (%d lines total; control inputs asserted per Design.ControlTable)\n",
		strings.Count(sb.String(), "\n"))
}
