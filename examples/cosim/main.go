// Cosim: the verification story, twice over. First the pipeline's own
// cosim stage — flow.Options{Cosim: true} — runs seeded random stimulus
// through the behavioral ISPS interpreter and the synthesized
// register-transfer design in lockstep and reports an equivalence
// verdict; the emit stage renders the datapath as structural Verilog in
// the same compile. Then a directed test drives the same two machines by
// hand: a 6502 machine-code program executes on both sides and the
// architectural state must agree.
//
// One flow.Compile run provides everything: the verdict (res.Cosim), the
// Verilog (res.Verilog), the analyzed AST for the behavioral interpreter
// (res.AST), and the synthesized structure for the register-transfer
// simulator (res.Design).
//
//	go run ./examples/cosim
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/flow"
	"repro/internal/rtlsim"
	"repro/internal/sim"
)

func main() {
	in, err := bench.Input("mcs6502")
	if err != nil {
		log.Fatal(err)
	}
	res, err := flow.Compile(context.Background(), in, flow.Options{
		EmitVerilog: true,
		Cosim:       true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The staged pipeline already verified the design: the cosim stage's
	// verdict is on the result, and `daa -bench mcs6502 -verify` prints
	// this same block.
	fmt.Println("pipeline cosim stage (seeded random stimulus):")
	res.Cosim.Write(os.Stdout)
	if !res.Cosim.Equivalent {
		log.Fatal("cosim stage found a mismatch")
	}

	// A directed test on top: sum 1..5 with a compare/branch loop
	// substitute (unrolled adds), then store the total.
	program := []uint64{
		0xA9, 0x00, // LDA #0
		0x18,       // CLC
		0x69, 0x01, // ADC #1
		0x69, 0x02, // ADC #2
		0x69, 0x03, // ADC #3
		0x69, 0x04, // ADC #4
		0x69, 0x05, // ADC #5
		0x85, 0x42, // STA $42
	}
	const cycles = 8

	// Reference: the behavioral ISPS interpreter, on the compile's AST.
	ref := sim.New(res.AST)
	ref.Load("M", 0x0200, program)
	ref.Set("PC", 0x0200)
	ref.Set("S", 0xFF)
	if err := ref.RunN(cycles); err != nil {
		log.Fatal(err)
	}

	// Device under test: the DAA's synthesized design, executed at the
	// control-step level.
	dut, err := rtlsim.New(res.Design)
	if err != nil {
		log.Fatal(err)
	}
	dut.Load("M", 0x0200, program)
	dut.Set("PC", 0x0200)
	dut.Set("S", 0xFF)
	if err := dut.RunN(cycles); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\ndirected co-simulation of the MCS6502 design vs the behavioral reference:")
	agree := true
	for _, reg := range []string{"A", "X", "Y", "S", "P", "PC"} {
		want, _ := ref.Get(reg)
		got, _ := dut.Get(reg)
		status := "ok"
		if got != want {
			status = "MISMATCH"
			agree = false
		}
		fmt.Printf("  %-3s behavioral=%#04x design=%#04x  %s\n", reg, want, got, status)
	}
	w, _ := ref.Mem("M", 0x42)
	g, _ := dut.Mem("M", 0x42)
	fmt.Printf("  M[$42] behavioral=%d design=%d (1+2+3+4+5 = 15)\n", w, g)
	if !agree || w != g || w != 15 {
		log.Fatal("designs disagree")
	}

	fmt.Println("\nfirst lines of the emit stage's structural Verilog:")
	lines := strings.SplitN(res.Verilog, "\n", 16)
	for _, l := range lines[:15] {
		fmt.Println("  " + l)
	}
	fmt.Printf("  ... (%d lines total; control inputs asserted per Design.ControlTable)\n",
		strings.Count(res.Verilog, "\n"))
}
