// Customrules: extending the knowledge base, the way DAA users added
// designer knowledge. Two extra cleanup rules are injected:
//
//   - an audit rule that flags every multiplexer wider than four ways (a
//     design-review heuristic: wide muxes suggest a missing bus), and
//   - a policy rule that reports holding registers that survived cleanup
//     without ever being merged, as candidates for manual review.
//
// Extension rules see the same working memory as the built-in cleanup
// rules ("hreg" and "unit" elements) and may also inspect the design under
// construction through closures. They ride into the pipeline through
// flow.Options.Core.ExtraRules.
//
//	go run ./examples/customrules
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/prod"
	"repro/internal/rtl"
)

func main() {
	in, err := bench.Input("am2901")
	if err != nil {
		log.Fatal(err)
	}

	var findings []string

	auditUnits := &prod.Rule{
		Name:     "audit-multi-function-unit",
		Category: "cleanup",
		Doc:      "Report every ALU the fold rules assembled.",
		Patterns: []prod.Pattern{prod.P("unit")},
		Action: func(e *prod.Tx, m *prod.Match) {
			u := m.El(0).Get("unit").(*rtl.Unit)
			if len(u.Fns) > 1 {
				findings = append(findings, fmt.Sprintf("ALU %s carries %d functions", u.Name, len(u.Fns)))
			}
		},
	}
	auditRegs := &prod.Rule{
		Name:     "audit-unmerged-holding-register",
		Category: "cleanup",
		Doc:      "Report holding registers for manual review.",
		Patterns: []prod.Pattern{prod.P("hreg")},
		Action: func(e *prod.Tx, m *prod.Match) {
			r := m.El(0).Get("reg").(*rtl.Register)
			findings = append(findings, fmt.Sprintf("holding register %s<%d> survived cleanup", r.Name, r.Width))
		},
	}

	res, err := flow.Compile(context.Background(), in, flow.Options{
		Core: core.Options{ExtraRules: []*prod.Rule{auditUnits, auditRegs}},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("synthesized am2901: %v\n\n", res.Design.Counts())
	fmt.Println("custom-rule findings:")
	if len(findings) == 0 {
		fmt.Println("  (none)")
	}
	for _, f := range findings {
		fmt.Println(" ", f)
	}
	fmt.Println("\nNote: audit rules fire through the same conflict-resolution")
	fmt.Println("machinery as the built-in knowledge; a rule could equally")
	fmt.Println("rewrite the design, as the merge/fold rules do.")
}
