// GCD: the smallest interesting synthesis — a loop with two mutually
// exclusive subtractions. The knowledge rules fold both subtracters and
// both comparisons into a single ALU; the example shows the firing trace
// of the cleanup phase doing it.
//
//	go run ./examples/gcd
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/alloc"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/report"
)

func main() {
	trace, err := bench.Load("gcd")
	if err != nil {
		log.Fatal(err)
	}

	// Capture the rule-firing trace to show the cleanup phase working.
	var firings strings.Builder
	daa, err := core.Synthesize(trace, core.Options{Trace: &firings})
	if err != nil {
		log.Fatal(err)
	}
	le, err := alloc.LeftEdge(trace, alloc.Options{})
	if err != nil {
		log.Fatal(err)
	}
	naive, err := alloc.Naive(trace, alloc.Options{})
	if err != nil {
		log.Fatal(err)
	}

	model := cost.Default()
	t := report.New("GCD: three allocators, one behavior",
		"allocator", "units", "unit fns", "muxes", "links", "gate equiv")
	dc, lc, nc := daa.Design.Counts(), le.Counts(), naive.Counts()
	t.Row("daa", dc.Units, dc.UnitFns, dc.Muxes, dc.Links, model.Design(daa.Design).Datapath)
	t.Row("left-edge", lc.Units, lc.UnitFns, lc.Muxes, lc.Links, model.Design(le).Datapath)
	t.Row("naive", nc.Units, nc.UnitFns, nc.Muxes, nc.Links, model.Design(naive).Datapath)
	t.Render(os.Stdout)

	fmt.Println("the DAA's datapath (note the single shared ALU):")
	fmt.Print(daa.Design.Report())

	fmt.Println("\ncleanup-phase firings (the global-improvement knowledge):")
	for _, line := range strings.Split(firings.String(), "\n") {
		if strings.Contains(line, "fold-") || strings.Contains(line, "merge-") {
			fmt.Println(" ", strings.TrimSpace(line))
		}
	}
}
