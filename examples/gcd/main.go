// GCD: the smallest interesting synthesis — a loop with two mutually
// exclusive subtractions. The knowledge rules fold both subtracters and
// both comparisons into a single ALU; the example shows the firing trace
// of the cleanup phase doing it.
//
// All three allocators run through flow.Compile; the DAA run threads a
// trace writer into the production engine through Options.Core.
//
//	go run ./examples/gcd
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/report"
)

func main() {
	in, err := bench.Input("gcd")
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// Capture the rule-firing trace to show the cleanup phase working.
	var firings strings.Builder
	daa, err := flow.Compile(ctx, in, flow.Options{Core: core.Options{Trace: &firings}})
	if err != nil {
		log.Fatal(err)
	}
	le, err := flow.Compile(ctx, in, flow.Options{Allocator: flow.AllocLeftEdge})
	if err != nil {
		log.Fatal(err)
	}
	naive, err := flow.Compile(ctx, in, flow.Options{Allocator: flow.AllocNaive})
	if err != nil {
		log.Fatal(err)
	}

	t := report.New("GCD: three allocators, one behavior",
		"allocator", "units", "unit fns", "muxes", "links", "gate equiv")
	dc, lc, nc := daa.Design.Counts(), le.Design.Counts(), naive.Design.Counts()
	t.Row("daa", dc.Units, dc.UnitFns, dc.Muxes, dc.Links, daa.Cost.Datapath)
	t.Row("left-edge", lc.Units, lc.UnitFns, lc.Muxes, lc.Links, le.Cost.Datapath)
	t.Row("naive", nc.Units, nc.UnitFns, nc.Muxes, nc.Links, naive.Cost.Datapath)
	t.Render(os.Stdout)

	fmt.Println("the DAA's datapath (note the single shared ALU):")
	fmt.Print(daa.Design.Report())

	fmt.Println("\ncleanup-phase firings (the global-improvement knowledge):")
	for _, line := range strings.Split(firings.String(), "\n") {
		if strings.Contains(line, "fold-") || strings.Contains(line, "merge-") {
			fmt.Println(" ", strings.TrimSpace(line))
		}
	}
}
