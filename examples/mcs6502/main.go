// The paper's case study: synthesize the MOS Technology MCS6502 from its
// ISPS description and compare the knowledge-based design against the
// baselines, as the DAC 1983 evaluation did.
//
//	go run ./examples/mcs6502
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/alloc"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/report"
)

func main() {
	trace, err := bench.Load("mcs6502")
	if err != nil {
		log.Fatal(err)
	}
	st := trace.Stats()
	fmt.Printf("MCS6502 value trace: %d operators in %d bodies over %d carriers\n\n",
		st.Ops, st.Bodies, st.Carriers)

	daa, err := core.Synthesize(trace, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	le, err := alloc.LeftEdge(trace, alloc.Options{})
	if err != nil {
		log.Fatal(err)
	}
	naive, err := alloc.Naive(trace, alloc.Options{})
	if err != nil {
		log.Fatal(err)
	}

	model := cost.Default()
	t := report.New("MCS6502: knowledge-based design vs baselines",
		"allocator", "regs", "units", "unit fns", "muxes", "links", "states", "gate equiv")
	dc, lc, nc := daa.Design.Counts(), le.Counts(), naive.Counts()
	t.Row("daa", dc.Registers, dc.Units, dc.UnitFns, dc.Muxes, dc.Links, dc.States, model.Design(daa.Design).Datapath)
	t.Row("left-edge", lc.Registers, lc.Units, lc.UnitFns, lc.Muxes, lc.Links, lc.States, model.Design(le).Datapath)
	t.Row("naive", nc.Registers, nc.Units, nc.UnitFns, nc.Muxes, nc.Links, nc.States, model.Design(naive).Datapath)
	t.Note("naive/daa: %.2fx fewer gate equivalents with the knowledge rules", model.Ratio(naive, daa.Design))
	t.Render(os.Stdout)

	fmt.Println("DAA functional units (the paper reported a small ALU set):")
	for _, u := range daa.Design.Units {
		fmt.Printf("  %s\n", u)
	}
	fmt.Println()
	fmt.Println("synthesis statistics:")
	for _, ph := range daa.Stats.Phases {
		fmt.Printf("  %-12s %5d firings  %v\n", ph.Name, ph.Firings, ph.Elapsed.Round(1000*1000))
	}
	fmt.Printf("  total %d firings, %.0f/sec (the 1983 VAX OPS5 managed ~2/sec)\n",
		daa.Stats.TotalFirings, daa.Stats.FiringsPerSecond())
}
