// The paper's case study: synthesize the MOS Technology MCS6502 from its
// ISPS description and compare the knowledge-based design against the
// baselines, as the DAC 1983 evaluation did.
//
// Each allocator gets its own flow.Compile run. The pipeline's artifact
// cache builds the front end once and hands every run a private clone of
// the trace, so the baselines see the unrefined description even though
// the DAA's trace rules rewrite its copy in place.
//
//	go run ./examples/mcs6502
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/internal/bench"
	"repro/internal/flow"
	"repro/internal/report"
)

func main() {
	in, err := bench.Input("mcs6502")
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	compile := func(allocator string) *flow.Result {
		res, err := flow.Compile(ctx, in, flow.Options{Allocator: allocator})
		if err != nil {
			log.Fatalf("%s: %v", allocator, err)
		}
		return res
	}
	daa := compile(flow.AllocDAA)
	le := compile(flow.AllocLeftEdge)
	naive := compile(flow.AllocNaive)

	// The baselines' VT is the description as written; the DAA's copy was
	// refined in place by the trace rules.
	st := le.VT.Stats()
	fmt.Printf("MCS6502 value trace: %d operators in %d bodies over %d carriers\n\n",
		st.Ops, st.Bodies, st.Carriers)

	t := report.New("MCS6502: knowledge-based design vs baselines",
		"allocator", "regs", "units", "unit fns", "muxes", "links", "states", "gate equiv")
	dc, lc, nc := daa.Design.Counts(), le.Design.Counts(), naive.Design.Counts()
	t.Row("daa", dc.Registers, dc.Units, dc.UnitFns, dc.Muxes, dc.Links, dc.States, daa.Cost.Datapath)
	t.Row("left-edge", lc.Registers, lc.Units, lc.UnitFns, lc.Muxes, lc.Links, lc.States, le.Cost.Datapath)
	t.Row("naive", nc.Registers, nc.Units, nc.UnitFns, nc.Muxes, nc.Links, nc.States, naive.Cost.Datapath)
	t.Note("naive/daa: %.2fx fewer gate equivalents with the knowledge rules",
		naive.Cost.Datapath/daa.Cost.Datapath)
	t.Render(os.Stdout)

	fmt.Println("DAA functional units (the paper reported a small ALU set):")
	for _, u := range daa.Design.Units {
		fmt.Printf("  %s\n", u)
	}
	fmt.Println()
	fmt.Println("synthesis statistics:")
	for _, ph := range daa.Synth.Stats.Phases {
		fmt.Printf("  %-12s %5d firings  %v\n", ph.Name, ph.Firings, ph.Elapsed.Round(1000*1000))
	}
	fmt.Printf("  total %d firings, %.0f/sec (the 1983 VAX OPS5 managed ~2/sec)\n",
		daa.Synth.Stats.TotalFirings, daa.Synth.Stats.FiringsPerSecond())
}
