// Quickstart: parse an ISPS description, build its Value Trace, run the
// DAA, and print the resulting register-transfer design.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/isps"
	"repro/internal/vt"
)

// A minimal accumulator machine: one register, one adder, one decision.
const src = `
processor ACCUM {
    reg ACC<7:0>
    port in  DATA<7:0>
    port in  LOADIT
    port out RESULT<7:0>
    main step {
        if LOADIT {
            ACC := DATA
        } else {
            ACC := ACC + DATA
        }
        RESULT := ACC
    }
}`

func main() {
	// 1. Parse and analyze the behavioral description.
	prog, err := isps.Parse("accum.isps", src)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Lower it to the Value Trace, the DAA's input representation.
	trace, err := vt.Build(prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("value trace: %s\n\n", trace.Stats())

	// 3. Run the knowledge-based allocator.
	res, err := core.Synthesize(trace, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Inspect the synthesized structure.
	fmt.Print(res.Design.Report())
	fmt.Printf("\ngate equivalents: %v\n", cost.Default().Design(res.Design))
	fmt.Printf("rules fired: %d in %v\n", res.Stats.TotalFirings, res.Stats.Elapsed.Round(1000*1000))
}
