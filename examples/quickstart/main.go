// Quickstart: compile an ISPS description through the staged pipeline —
// parse → sema → build (Value Trace) → allocate (the DAA) → validate →
// cost — and print the resulting register-transfer design, with the
// per-stage wall time the pipeline recorded.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/internal/flow"
)

// A minimal accumulator machine: one register, one adder, one decision.
const src = `
processor ACCUM {
    reg ACC<7:0>
    port in  DATA<7:0>
    port in  LOADIT
    port out RESULT<7:0>
    main step {
        if LOADIT {
            ACC := DATA
        } else {
            ACC := ACC + DATA
        }
        RESULT := ACC
    }
}`

func main() {
	// One call runs the whole pipeline. Input errors would come back as a
	// flow.DiagnosticList with file:line:col positions.
	res, err := flow.Compile(context.Background(),
		flow.Input{Name: "accum.isps", Source: src}, flow.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// The result carries every intermediate: the analyzed AST (res.AST),
	// the Value Trace the allocator consumed (res.VT), the synthesized
	// structure, and the gate-equivalent cost.
	fmt.Printf("value trace: %s\n\n", res.VT.Stats())
	fmt.Print(res.Design.Report())
	fmt.Printf("\ngate equivalents: %v\n", res.Cost)
	fmt.Printf("rules fired: %d in %v\n\n",
		res.Synth.Stats.TotalFirings, res.Synth.Stats.Elapsed.Round(1000*1000))

	// Where the compile spent its time (daa -stage-timing prints the same).
	res.Trace.Write(os.Stdout)
}
